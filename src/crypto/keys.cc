#include "src/crypto/keys.h"

#include <array>

#include "src/common/uint128.h"

namespace past {
namespace {

constexpr uint64_t kPublicExponent = 65537;

// Deterministic Miller-Rabin witnesses, sufficient for all n < 3.3e24.
constexpr std::array<uint64_t, 7> kWitnesses = {2, 3, 5, 7, 11, 13, 17};

uint64_t ReduceDigestTo64(const Sha1Digest& digest, uint64_t modulus) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | digest[static_cast<size_t>(i)];
  }
  // Keep strictly below the modulus so the RSA permutation applies.
  return v % modulus;
}

uint64_t RandomPrime(Rng& rng, int bits) {
  for (;;) {
    uint64_t candidate = rng.NextU64() & ((1ULL << bits) - 1);
    candidate |= (1ULL << (bits - 1)) | 1ULL;  // force top bit and oddness
    if (IsPrime(candidate)) {
      return candidate;
    }
  }
}

// Extended Euclid for the modular inverse of e mod phi.
uint64_t ModInverse(uint64_t e, uint64_t phi) {
  int64_t t = 0, new_t = 1;
  int64_t r = static_cast<int64_t>(phi), new_r = static_cast<int64_t>(e);
  while (new_r != 0) {
    int64_t q = r / new_r;
    int64_t tmp = t - q * new_t;
    t = new_t;
    new_t = tmp;
    tmp = r - q * new_r;
    r = new_r;
    new_r = tmp;
  }
  if (r != 1) {
    return 0;  // not invertible; caller retries with other primes
  }
  if (t < 0) {
    t += static_cast<int64_t>(phi);
  }
  return static_cast<uint64_t>(t);
}

}  // namespace

uint64_t ModMul(uint64_t a, uint64_t b, uint64_t m) {
  return static_cast<uint64_t>(static_cast<uint128>(a) * b % m);
}

uint64_t ModPow(uint64_t base, uint64_t exp, uint64_t m) {
  uint64_t result = 1 % m;
  base %= m;
  while (exp > 0) {
    if (exp & 1) {
      result = ModMul(result, base, m);
    }
    base = ModMul(base, base, m);
    exp >>= 1;
  }
  return result;
}

bool IsPrime(uint64_t n) {
  if (n < 2) {
    return false;
  }
  for (uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL, 23ULL}) {
    if (n % p == 0) {
      return n == p;
    }
  }
  uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  for (uint64_t a : kWitnesses) {
    uint64_t x = ModPow(a % n, d, n);
    if (x == 1 || x == n - 1) {
      continue;
    }
    bool composite = true;
    for (int i = 0; i < r - 1; ++i) {
      x = ModMul(x, x, n);
      if (x == n - 1) {
        composite = false;
        break;
      }
    }
    if (composite) {
      return false;
    }
  }
  return true;
}

std::string PublicKey::ToBytes() const {
  std::string out(16, '\0');
  for (int i = 0; i < 8; ++i) {
    out[static_cast<size_t>(i)] = static_cast<char>(modulus >> (56 - 8 * i));
    out[static_cast<size_t>(8 + i)] = static_cast<char>(exponent >> (56 - 8 * i));
  }
  return out;
}

KeyPair KeyPair::Generate(Rng& rng) {
  for (;;) {
    uint64_t p = RandomPrime(rng, 31);
    uint64_t q = RandomPrime(rng, 31);
    if (p == q) {
      continue;
    }
    uint64_t n = p * q;
    uint64_t phi = (p - 1) * (q - 1);
    if (phi % kPublicExponent == 0) {
      continue;  // e must be coprime with phi
    }
    uint64_t d = ModInverse(kPublicExponent, phi);
    if (d == 0) {
      continue;
    }
    return KeyPair(PublicKey{n, kPublicExponent}, d);
  }
}

Signature KeyPair::Sign(std::string_view message) const {
  uint64_t h = ReduceDigestTo64(Sha1::Hash(message), public_key_.modulus);
  return Signature{ModPow(h, private_exponent_, public_key_.modulus)};
}

bool KeyPair::Verify(const PublicKey& key, std::string_view message, const Signature& sig) {
  if (key.modulus == 0) {
    return false;
  }
  uint64_t h = ReduceDigestTo64(Sha1::Hash(message), key.modulus);
  return ModPow(sig.value, key.exponent, key.modulus) == h;
}

}  // namespace past
