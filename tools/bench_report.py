#!/usr/bin/env python3
"""Validate and report on bench_regression JSON dumps (BENCH_PR2.json).

Usage:
  bench_report.py REPORT.json                     # human-readable report
  bench_report.py --check REPORT.json             # schema + consistency check
  bench_report.py --check --min-speedup 1.2 R.json  # also require a hot-path win
  bench_report.py --check --max-regression 0.05 R.json  # fail if any headline
                                                  # metric fell >5% vs baseline
  bench_report.py --merge-baseline OLD.json REPORT.json [-o OUT.json]
                                                  # embed OLD's metrics as the
                                                  # baseline section of REPORT

A report's "metrics" section is the current measurement; the optional
"baseline" section holds the pre-change measurement taken with the same
workloads (typically merged in from a report generated before an
optimization landed). --check always validates structure; with
--min-speedup it additionally requires at least one single-run hot-path
metric (routes_per_sec, sha1_mb_per_sec, inserts_per_sec) to improve by the
given factor over the baseline.

Both gates (--min-speedup / --max-regression) refuse single-run candidates:
the report must carry "runs" >= 2 and a "cov" section (bench_regression
--runs N measures the metrics interleaved and emits per-metric means and
coefficients of variation). CoV above 0.15 on a headline metric prints a
noise warning.
"""

import argparse
import json
import sys

SCHEMA = "past-bench-regression-v1"

METRIC_KEYS = [
    "sha1_mb_per_sec",
    "routes_per_sec",
    "route_avg_hops",
    "inserts_per_sec",
    "lookups_per_sec",
    "sweep_wall_seconds_jobs1",
    "sweep_wall_seconds_jobsn",
    "sweep_speedup",
    "sweep_deterministic",
]

HOT_PATH_KEYS = ["routes_per_sec", "sha1_mb_per_sec", "inserts_per_sec", "lookups_per_sec"]


def load(path):
    with open(path) as f:
        return json.load(f)


def validate_metrics(metrics, errors, where):
    for key in METRIC_KEYS:
        if key not in metrics:
            errors.append(f"{where}: missing key '{key}'")
            continue
        value = metrics[key]
        if key == "sweep_deterministic":
            if not isinstance(value, bool):
                errors.append(f"{where}: '{key}' must be a boolean, got {value!r}")
        elif not isinstance(value, (int, float)) or isinstance(value, bool):
            errors.append(f"{where}: '{key}' must be a number, got {value!r}")
        elif key != "route_avg_hops" and value < 0:
            errors.append(f"{where}: '{key}' must be non-negative, got {value}")
    for key in ("sha1_mb_per_sec", "routes_per_sec", "inserts_per_sec", "lookups_per_sec"):
        if isinstance(metrics.get(key), (int, float)) and metrics.get(key) == 0:
            errors.append(f"{where}: '{key}' is zero (measurement did not run?)")


def check(report, min_speedup, max_regression=None):
    errors = []
    if report.get("schema") != SCHEMA:
        errors.append(f"schema must be '{SCHEMA}', got {report.get('schema')!r}")
    if report.get("mode") not in ("smoke", "full"):
        errors.append(f"mode must be 'smoke' or 'full', got {report.get('mode')!r}")
    if not isinstance(report.get("jobs"), int) or report.get("jobs", 0) < 1:
        errors.append(f"jobs must be a positive integer, got {report.get('jobs')!r}")
    runs = report.get("runs", 1)
    if not isinstance(runs, int) or runs < 1:
        errors.append(f"runs must be a positive integer, got {runs!r}")
        runs = 1
    # Optional since schema v1 reports predate it; when present it gates how
    # sweep_speedup is interpreted below.
    cores = report.get("cores")
    if cores is not None and (not isinstance(cores, int) or cores < 1):
        errors.append(f"cores must be a positive integer, got {cores!r}")
        cores = None

    # Gating a single-run candidate is meaningless: one sample cannot tell a
    # real regression from machine-load noise. bench_regression --runs N
    # produces interleaved multi-run means plus per-metric CoV.
    if (min_speedup is not None or max_regression is not None) and runs < 2:
        errors.append(
            "speedup/regression gates need interleaved multi-run means: "
            f"report has runs={runs}, re-measure with bench_regression --runs 3"
        )

    cov = report.get("cov")
    if cov is not None:
        if not isinstance(cov, dict):
            errors.append("'cov' must be an object")
        else:
            for key, value in cov.items():
                if not isinstance(value, (int, float)) or isinstance(value, bool) or value < 0:
                    errors.append(f"cov: '{key}' must be a non-negative number, got {value!r}")
            noisy = [
                f"{key} cov={value:.3f}"
                for key, value in cov.items()
                if isinstance(value, (int, float)) and value > 0.15
            ]
            if noisy:
                print("warning: noisy headline metric(s): " + ", ".join(noisy))
    elif runs >= 2:
        errors.append("multi-run report (runs >= 2) must carry a 'cov' section")

    metrics = report.get("metrics")
    if not isinstance(metrics, dict):
        errors.append("missing 'metrics' object")
    else:
        validate_metrics(metrics, errors, "metrics")
        if metrics.get("sweep_deterministic") is False:
            errors.append("metrics: sweep results differ between --jobs 1 and --jobs N")
        # Parallel-sweep speedup is only meaningful when the host could run
        # the shards concurrently. CI containers are routinely pinned to one
        # core; there jobs-N wall time is jobs-1 wall time plus scheduling
        # overhead, and a "speedup" below 1.0 is expected, not a regression.
        speedup = metrics.get("sweep_speedup")
        if isinstance(speedup, (int, float)) and not isinstance(speedup, bool):
            if cores == 1:
                print(
                    "note: single-core host (cores=1): sweep_speedup "
                    f"{speedup:.2f}x is informational and not gated"
                )
            elif speedup < 0.8 and (cores is None or cores > 1):
                print(
                    f"warning: sweep_speedup {speedup:.2f}x below 0.8 on a "
                    f"{cores if cores is not None else 'unknown'}-core host"
                )

    baseline = report.get("baseline")
    if baseline is not None:
        if not isinstance(baseline, dict):
            errors.append("'baseline' must be an object")
        else:
            validate_metrics(baseline, errors, "baseline")

    if min_speedup is not None:
        if not isinstance(baseline, dict):
            errors.append(f"--min-speedup {min_speedup} requires a baseline section")
        elif isinstance(metrics, dict):
            best_key, best = None, 0.0
            for key in HOT_PATH_KEYS:
                old, new = baseline.get(key), metrics.get(key)
                if isinstance(old, (int, float)) and old > 0 and isinstance(new, (int, float)):
                    speedup = new / old
                    if speedup > best:
                        best_key, best = key, speedup
            if best < min_speedup:
                errors.append(
                    f"no hot-path metric improved by {min_speedup}x over baseline "
                    f"(best: {best_key} at {best:.3f}x)"
                )
            else:
                print(f"speedup gate passed: {best_key} {best:.2f}x >= {min_speedup}x")

    if max_regression is not None:
        if not isinstance(baseline, dict):
            errors.append(f"--max-regression {max_regression} requires a baseline section")
        elif isinstance(metrics, dict):
            regressed = []
            for key in HOT_PATH_KEYS:
                old, new = baseline.get(key), metrics.get(key)
                if (
                    isinstance(old, (int, float))
                    and old > 0
                    and isinstance(new, (int, float))
                    and new < old * (1.0 - max_regression)
                ):
                    regressed.append(f"{key} {new / old:.3f}x of baseline")
            if regressed:
                errors.append(
                    f"headline metric(s) regressed more than "
                    f"{max_regression:.0%}: " + ", ".join(regressed)
                )
            else:
                print(f"regression gate passed: no headline metric below "
                      f"{1.0 - max_regression:.0%} of baseline")
    return errors


def fmt(value):
    if isinstance(value, bool):
        return "yes" if value else "NO"
    if isinstance(value, float):
        return f"{value:,.2f}"
    return str(value)


def print_report(report):
    metrics = report.get("metrics", {})
    baseline = report.get("baseline")
    cov = report.get("cov") or {}
    runs = report.get("runs", 1)
    cores = report.get("cores")
    print(
        f"bench_regression report ({report.get('mode')} mode, "
        f"jobs={report.get('jobs')}, runs={runs}"
        + (f", cores={cores})" if cores is not None else ")")
    )
    if cores == 1:
        print("  (single-core host: sweep_speedup is informational)")
    header = f"  {'metric':<28}{'current':>14}{'cov':>8}"
    if baseline:
        header += f"{'baseline':>14}{'speedup':>10}"
    print(header)
    for key in METRIC_KEYS:
        line = f"  {key:<28}{fmt(metrics.get(key, '-')):>14}"
        if key in cov:
            line += f"{cov[key]:>8.3f}"
        else:
            line += f"{'-':>8}"
        if baseline:
            old = baseline.get(key)
            line += f"{fmt(old) if old is not None else '-':>14}"
            if (
                key not in ("sweep_deterministic",)
                and isinstance(old, (int, float))
                and not isinstance(old, bool)
                and old > 0
                and isinstance(metrics.get(key), (int, float))
            ):
                ratio = metrics[key] / old
                # For wall-times and hops, lower is better: report old/new.
                if key.startswith("sweep_wall") or key == "route_avg_hops":
                    ratio = old / metrics[key] if metrics[key] > 0 else 0.0
                line += f"{ratio:>9.2f}x"
            else:
                line += f"{'-':>10}"
        print(line)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+", help="report JSON file(s)")
    parser.add_argument("--check", action="store_true", help="validate instead of report")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="with --check: require one hot-path metric >= this factor over baseline",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=None,
        help="with --check: fail if any headline throughput metric fell by more "
        "than this fraction vs. baseline (e.g. 0.05 for 5%%)",
    )
    parser.add_argument(
        "--merge-baseline",
        action="store_true",
        help="treat the first file as the baseline report and embed its metrics "
        "into the second file's 'baseline' section",
    )
    parser.add_argument("-o", "--out", default=None, help="output path for --merge-baseline")
    args = parser.parse_args()

    if args.merge_baseline:
        if len(args.files) != 2:
            parser.error("--merge-baseline needs exactly two files: BASELINE REPORT")
        baseline_report, report = load(args.files[0]), load(args.files[1])
        report["baseline"] = baseline_report.get("metrics", {})
        out = args.out or args.files[1]
        with open(out, "w") as f:
            json.dump(report, f, indent=2)
            f.write("\n")
        print(f"merged baseline {args.files[0]} into {out}")
        return 0

    status = 0
    for path in args.files:
        try:
            report = load(path)
        except (OSError, json.JSONDecodeError) as e:
            print(f"{path}: unreadable: {e}", file=sys.stderr)
            status = 1
            continue
        if args.check:
            errors = check(report, args.min_speedup, args.max_regression)
            if errors:
                for error in errors:
                    print(f"{path}: {error}", file=sys.stderr)
                status = 1
            else:
                print(f"{path}: OK")
        else:
            print_report(report)
    return status


if __name__ == "__main__":
    sys.exit(main())
