// Shared setup for the experiment bench binaries.
//
// Every bench runs with scaled-down defaults so `for b in build/bench/*; do
// $b; done` completes in minutes on one core; pass --paper-scale for the
// paper's 2250 nodes and full trace sizes, or override individual knobs
// (--nodes, --files, --refs, --seed, --csv).
#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>

#include "src/harness/cli.h"
#include "src/harness/experiment.h"
#include "src/harness/table_printer.h"

namespace past {

// Validates `config`, printing every problem; exits with status 2 when
// invalid so a bad flag combination fails loudly instead of mid-run.
inline void ValidateOrDie(const ExperimentConfig& config) {
  std::vector<std::string> errors = config.Validate();
  if (errors.empty()) {
    return;
  }
  for (const std::string& error : errors) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
  }
  std::exit(2);
}

inline ExperimentConfig BenchConfig(const CommandLine& cli) {
  ExperimentConfig config;
  if (cli.Has("--paper-scale")) {
    config.num_nodes = 2250;
    config.catalog_size = 1863055;
  } else {
    // catalog 0 = auto: num_nodes * 800 files, preserving the paper's
    // files-per-node ratio that governs packing at saturation.
    config.num_nodes = static_cast<size_t>(cli.GetInt("--nodes", 300));
    config.catalog_size = static_cast<uint32_t>(cli.GetInt("--files", 0));
  }
  config.seed = static_cast<uint64_t>(cli.GetInt("--seed", 42));
  config.t_pri = cli.GetDouble("--tpri", 0.1);
  config.t_div = cli.GetDouble("--tdiv", 0.05);
  config.demand_factor = cli.GetDouble("--demand", 1.53);
  // Observability: dump the aggregated metrics registry / per-op JSONL trace
  // at end of run. With several RunExperiment calls per bench, each run
  // overwrites the file, so the dump reflects the final configuration.
  config.metrics_json_path = cli.GetString("--metrics-json", "");
  config.trace_jsonl_path = cli.GetString("--trace-jsonl", "");
  ValidateOrDie(config);
  return config;
}

inline void PrintHeader(const char* what, const ExperimentConfig& config) {
  std::printf("# %s\n", what);
  std::printf("# nodes=%zu files=%u k=%u b=%d l=%d seed=%llu\n", config.num_nodes,
              config.catalog_size, config.k, config.b, config.leaf_set_size,
              static_cast<unsigned long long>(config.seed));
}

}  // namespace past

#endif  // BENCH_BENCH_COMMON_H_
