// Churn tests: node joins, failures, silent failures with keep-alive
// detection, recovery, and the leaf-set invariant under mixed churn.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/pastry/network.h"

namespace past {
namespace {

TEST(PastryChurnTest, JoinMaintainsLeafSets) {
  PastryConfig config;
  PastryNetwork network(config, 31);
  network.BuildInitialNetwork(100);
  EXPECT_EQ(network.CountLeafSetViolations(), 0u);
  for (int i = 0; i < 50; ++i) {
    network.CreateNode();
  }
  EXPECT_EQ(network.CountLeafSetViolations(), 0u);
}

TEST(PastryChurnTest, FailureRepairsLeafSets) {
  PastryConfig config;
  PastryNetwork network(config, 32);
  network.BuildInitialNetwork(120);
  Rng rng(33);
  for (int i = 0; i < 30; ++i) {
    std::vector<NodeId> nodes = network.live_nodes();
    network.FailNode(nodes[rng.NextBelow(nodes.size())]);
  }
  EXPECT_EQ(network.live_count(), 90u);
  EXPECT_EQ(network.CountLeafSetViolations(), 0u);
}

TEST(PastryChurnTest, RoutingCorrectAfterChurn) {
  PastryConfig config;
  PastryNetwork network(config, 34);
  network.BuildInitialNetwork(150);
  Rng rng(35);
  for (int i = 0; i < 40; ++i) {
    if (rng.NextBool(0.5)) {
      network.CreateNode();
    } else {
      std::vector<NodeId> nodes = network.live_nodes();
      network.FailNode(nodes[rng.NextBelow(nodes.size())]);
    }
  }
  std::vector<NodeId> nodes = network.live_nodes();
  for (int i = 0; i < 200; ++i) {
    NodeId key(rng.NextU64(), rng.NextU64());
    NodeId origin = nodes[rng.NextBelow(nodes.size())];
    EXPECT_EQ(network.Route(origin, key).destination(), network.ClosestLive(key));
  }
}

TEST(PastryChurnTest, SilentFailureDetectedByKeepAlive) {
  PastryConfig config;
  PastryNetwork network(config, 36);
  network.BuildInitialNetwork(80);
  std::vector<NodeId> nodes = network.live_nodes();
  NodeId victim = nodes[10];
  network.FailNodeSilently(victim);
  // Before the keep-alive round, some leaf sets still reference the corpse.
  size_t detected = network.DetectAndRepair();
  EXPECT_EQ(detected, 1u);
  EXPECT_EQ(network.CountLeafSetViolations(), 0u);
  // A second round finds nothing.
  EXPECT_EQ(network.DetectAndRepair(), 0u);
}

TEST(PastryChurnTest, RoutingWorksDespiteUndetectedSilentFailures) {
  // Routes must succeed even before keep-alive detection, via lazy repair.
  PastryConfig config;
  PastryNetwork network(config, 37);
  network.BuildInitialNetwork(120);
  Rng rng(38);
  std::vector<NodeId> nodes = network.live_nodes();
  for (int i = 0; i < 10; ++i) {
    network.FailNodeSilently(nodes[rng.NextBelow(nodes.size())]);
  }
  std::vector<NodeId> live = network.live_nodes();
  for (int i = 0; i < 100; ++i) {
    NodeId key(rng.NextU64(), rng.NextU64());
    NodeId origin = live[rng.NextBelow(live.size())];
    EXPECT_EQ(network.Route(origin, key).destination(), network.ClosestLive(key));
  }
}

TEST(PastryChurnTest, RecoveredNodeRejoins) {
  PastryConfig config;
  PastryNetwork network(config, 39);
  network.BuildInitialNetwork(60);
  std::vector<NodeId> nodes = network.live_nodes();
  NodeId victim = nodes[5];
  network.FailNode(victim);
  EXPECT_FALSE(network.IsAlive(victim));
  EXPECT_TRUE(network.RecoverNode(victim));
  EXPECT_TRUE(network.IsAlive(victim));
  EXPECT_EQ(network.live_count(), 60u);
  EXPECT_EQ(network.CountLeafSetViolations(), 0u);
  // Recovering an alive node is rejected.
  EXPECT_FALSE(network.RecoverNode(victim));
}

TEST(PastryChurnTest, ObserverSeesMembershipEvents) {
  class Recorder : public MembershipObserver {
   public:
    void OnNodeJoined(const NodeId& id) override { joined.push_back(id); }
    void OnNodeFailed(const NodeId& id) override { failed.push_back(id); }
    std::vector<NodeId> joined;
    std::vector<NodeId> failed;
  };
  PastryConfig config;
  PastryNetwork network(config, 40);
  Recorder recorder;
  network.AddObserver(&recorder);
  network.BuildInitialNetwork(10);
  EXPECT_EQ(recorder.joined.size(), 10u);
  std::vector<NodeId> nodes = network.live_nodes();
  network.FailNode(nodes[0]);
  ASSERT_EQ(recorder.failed.size(), 1u);
  EXPECT_EQ(recorder.failed[0], nodes[0]);
  network.RemoveObserver(&recorder);
  network.CreateNode();
  EXPECT_EQ(recorder.joined.size(), 10u);  // no longer notified
}

// Heavier randomized churn property test across seeds.
class ChurnPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChurnPropertyTest, LeafSetInvariantSurvivesMixedChurn) {
  PastryConfig config;
  config.leaf_set_size = 16;
  PastryNetwork network(config, GetParam());
  network.BuildInitialNetwork(80);
  Rng rng(GetParam() * 7 + 1);
  for (int round = 0; round < 60; ++round) {
    double p = rng.NextDouble();
    if (p < 0.4) {
      network.CreateNode();
    } else if (p < 0.8) {
      std::vector<NodeId> nodes = network.live_nodes();
      if (nodes.size() > 40) {
        network.FailNode(nodes[rng.NextBelow(nodes.size())]);
      }
    } else {
      std::vector<NodeId> nodes = network.live_nodes();
      if (nodes.size() > 40) {
        network.FailNodeSilently(nodes[rng.NextBelow(nodes.size())]);
        network.DetectAndRepair();
      }
    }
  }
  EXPECT_EQ(network.CountLeafSetViolations(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnPropertyTest, ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace past
