// GreedyDual-Size eviction (paper section 4; Cao & Irani, USITS'97).
//
// Each cached file d carries a weight H_d = L + c(d)/s(d), where c(d) is the
// retrieval cost (1 in PAST, maximizing hit rate), s(d) the file size, and L
// an inflation value. The victim is the file with minimal H; on eviction L
// rises to the victim's H. This "inflation" formulation is arithmetically
// identical to the paper's description (subtracting H_victim from all
// remaining weights) but runs in O(log n) per operation.
#ifndef SRC_CACHE_GDS_POLICY_H_
#define SRC_CACHE_GDS_POLICY_H_

#include <map>
#include <set>
#include <unordered_map>

#include "src/cache/eviction_policy.h"

namespace past {

class GdsPolicy : public EvictionPolicy {
 public:
  // `cost` is c(d), identical for all files (PAST sets it to 1).
  explicit GdsPolicy(double cost = 1.0) : cost_(cost) {}

  void OnInsert(const FileId& id, uint64_t size) override;
  void OnHit(const FileId& id, uint64_t size) override;
  void OnRemove(const FileId& id) override;
  std::optional<FileId> EvictVictim() override;
  std::string name() const override { return "GD-S"; }

  double inflation() const { return inflation_; }

 private:
  void Enqueue(const FileId& id, uint64_t size);

  double cost_;
  double inflation_ = 0.0;  // L
  std::unordered_map<FileId, double, FileIdHash> weight_;
  std::set<std::pair<double, FileId>> queue_;  // ordered by (H, id)
};

}  // namespace past

#endif  // SRC_CACHE_GDS_POLICY_H_
