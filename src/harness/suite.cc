#include "src/harness/suite.h"

#include <future>
#include <sstream>
#include <stdexcept>

#include "src/common/thread_pool.h"

namespace past {
namespace {

void ValidateAll(const std::vector<ExperimentConfig>& configs) {
  std::ostringstream joined;
  bool any = false;
  for (size_t i = 0; i < configs.size(); ++i) {
    for (const std::string& error : configs[i].Validate()) {
      joined << (any ? "; " : "") << "config[" << i << "]: " << error;
      any = true;
    }
  }
  if (any) {
    throw std::invalid_argument("invalid ExperimentConfig in suite: " + joined.str());
  }
}

}  // namespace

std::vector<ExperimentResult> RunExperimentSuite(std::vector<ExperimentConfig> configs,
                                                 const SuiteOptions& options) {
  if (options.derive_seeds) {
    for (size_t i = 0; i < configs.size(); ++i) {
      configs[i].seed += static_cast<uint64_t>(i);
    }
  }
  // Drop duplicate output paths on all but the last config naming them, so
  // concurrent experiments never write the same file.
  for (size_t i = 0; i < configs.size(); ++i) {
    for (size_t j = i + 1; j < configs.size(); ++j) {
      if (!configs[i].metrics_json_path.empty() &&
          configs[i].metrics_json_path == configs[j].metrics_json_path) {
        configs[i].metrics_json_path.clear();
      }
      if (!configs[i].trace_jsonl_path.empty() &&
          configs[i].trace_jsonl_path == configs[j].trace_jsonl_path) {
        configs[i].trace_jsonl_path.clear();
      }
    }
  }
  ValidateAll(configs);

  std::vector<ExperimentResult> results(configs.size());
  if (options.jobs <= 1 || configs.size() <= 1) {
    for (size_t i = 0; i < configs.size(); ++i) {
      results[i] = RunExperiment(configs[i]);
    }
    return results;
  }

  ThreadPool pool(static_cast<size_t>(options.jobs));
  std::vector<std::future<ExperimentResult>> futures;
  futures.reserve(configs.size());
  for (size_t i = 0; i < configs.size(); ++i) {
    const ExperimentConfig& config = configs[i];
    futures.push_back(pool.Submit([&config] { return RunExperiment(config); }));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    results[i] = futures[i].get();  // rethrows any experiment failure
  }
  return results;
}

}  // namespace past
