// Tests for the fixed-size worker pool behind RunExperimentSuite.
#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace past {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
  EXPECT_EQ(pool.submitted(), 100u);
}

TEST(ThreadPoolTest, ClampsZeroThreadsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, ResultsIndependentOfExecutionOrder) {
  // Each task computes from its own inputs only; whatever order the workers
  // pick tasks up in, the futures must deliver each task's own result.
  for (size_t workers : {1u, 2u, 8u}) {
    ThreadPool pool(workers);
    std::vector<std::future<uint64_t>> futures;
    for (uint64_t i = 0; i < 64; ++i) {
      futures.push_back(pool.Submit([i] {
        uint64_t acc = i;
        for (int step = 0; step < 1000; ++step) {
          acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
        }
        return acc;
      }));
    }
    std::vector<uint64_t> results;
    for (auto& f : futures) {
      results.push_back(f.get());
    }
    // Compare against the same computation run serially.
    for (uint64_t i = 0; i < 64; ++i) {
      uint64_t acc = i;
      for (int step = 0; step < 1000; ++step) {
        acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
      }
      EXPECT_EQ(results[static_cast<size_t>(i)], acc) << "task " << i << " workers " << workers;
    }
  }
}

TEST(ThreadPoolTest, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  std::future<int> bad = pool.Submit([]() -> int {
    throw std::runtime_error("task failed");
  });
  std::future<int> good = pool.Submit([] { return 5; });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // A throwing task must not take the worker down with it.
  EXPECT_EQ(good.get(), 5);
}

TEST(ThreadPoolTest, DestructionDrainsQueuedTasks) {
  // Queue far more tasks than workers and destroy the pool immediately: the
  // destructor must run every queued task (futures would otherwise throw
  // broken_promise).
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      futures.push_back(pool.Submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        ran.fetch_add(1, std::memory_order_relaxed);
      }));
    }
  }
  for (auto& f : futures) {
    EXPECT_NO_THROW(f.get());
  }
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPoolTest, SubmitDuringShutdownThrows) {
  // A task that resubmits while the destructor is draining must get the
  // documented runtime_error instead of deadlocking the join. The task
  // signals that it started, the main thread enters the destructor, and the
  // task then waits long enough for stopping_ to be set before resubmitting.
  std::promise<void> started;
  std::future<void> started_future = started.get_future();
  std::atomic<bool> threw{false};
  {
    ThreadPool pool(1);
    pool.Submit([&pool, &started, &threw] {
      started.set_value();
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      try {
        pool.Submit([] {});
      } catch (const std::runtime_error&) {
        threw.store(true);
      }
    });
    started_future.wait();
  }  // destructor runs while the task sleeps
  EXPECT_TRUE(threw.load());
}

}  // namespace
}  // namespace past
