// Node admission control tests (paper section 3.2).
#include <gtest/gtest.h>

#include "src/storage/admission.h"

namespace past {
namespace {

TEST(AdmissionTest, AcceptsTypicalNode) {
  AdmissionControl control;
  std::vector<uint64_t> leaf_caps(32, 27000000);
  auto result = control.Evaluate(30000000, leaf_caps);
  EXPECT_EQ(result.decision, AdmissionDecision::kAccept);
}

TEST(AdmissionTest, RejectsTinyNode) {
  AdmissionControl control;
  std::vector<uint64_t> leaf_caps(32, 27000000);
  auto result = control.Evaluate(100000, leaf_caps);  // ~0.4% of average
  EXPECT_EQ(result.decision, AdmissionDecision::kReject);
}

TEST(AdmissionTest, SplitsOversizedNode) {
  AdmissionControl control;
  std::vector<uint64_t> leaf_caps(32, 27000000);
  // 500x the average: must split into ceil(500/100) = 5 logical nodes.
  auto result = control.Evaluate(27000000ull * 500, leaf_caps);
  EXPECT_EQ(result.decision, AdmissionDecision::kSplit);
  EXPECT_EQ(result.split_count, 5);
}

TEST(AdmissionTest, BoundaryRatios) {
  AdmissionControl control;
  std::vector<uint64_t> leaf_caps(10, 1000);
  EXPECT_EQ(control.Evaluate(100000, leaf_caps).decision, AdmissionDecision::kAccept);
  EXPECT_EQ(control.Evaluate(100001, leaf_caps).decision, AdmissionDecision::kSplit);
  EXPECT_EQ(control.Evaluate(10, leaf_caps).decision, AdmissionDecision::kAccept);
  EXPECT_EQ(control.Evaluate(9, leaf_caps).decision, AdmissionDecision::kReject);
}

TEST(AdmissionTest, EmptyLeafSetAcceptsAnything) {
  AdmissionControl control;
  EXPECT_EQ(control.Evaluate(1, {}).decision, AdmissionDecision::kAccept);
  EXPECT_EQ(control.Evaluate(1ull << 60, {}).decision, AdmissionDecision::kAccept);
}

TEST(AdmissionTest, SplitNodesLandWithinBounds) {
  AdmissionControl control;
  std::vector<uint64_t> leaf_caps(32, 1000000);
  for (uint64_t factor : {150ull, 300ull, 1000ull, 5000ull}) {
    uint64_t advertised = 1000000ull * factor;
    auto result = control.Evaluate(advertised, leaf_caps);
    ASSERT_EQ(result.decision, AdmissionDecision::kSplit) << factor;
    uint64_t per_node = advertised / static_cast<uint64_t>(result.split_count);
    auto recheck = control.Evaluate(per_node, leaf_caps);
    EXPECT_EQ(recheck.decision, AdmissionDecision::kAccept) << factor;
  }
}

}  // namespace
}  // namespace past
