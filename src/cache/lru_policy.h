// Least-Recently-Used eviction, the comparison baseline in Figure 8.
#ifndef SRC_CACHE_LRU_POLICY_H_
#define SRC_CACHE_LRU_POLICY_H_

#include <list>
#include <unordered_map>

#include "src/cache/eviction_policy.h"

namespace past {

class LruPolicy : public EvictionPolicy {
 public:
  void OnInsert(const FileId& id, uint64_t size) override;
  void OnHit(const FileId& id, uint64_t size) override;
  void OnRemove(const FileId& id) override;
  std::optional<FileId> EvictVictim() override;
  std::string name() const override { return "LRU"; }

 private:
  void Touch(const FileId& id);

  std::list<FileId> order_;  // most recent at front
  std::unordered_map<FileId, std::list<FileId>::iterator, FileIdHash> index_;
};

}  // namespace past

#endif  // SRC_CACHE_LRU_POLICY_H_
