// Discrete-event simulation core.
//
// Storage and caching experiments drive Pastry routes synchronously (exactly
// what the paper's single-JVM emulation reduces to), but the failure
// machinery — keep-alive exchange, the unresponsiveness period T, leaf-set
// repair ordering — is inherently timed. The EventQueue provides a virtual
// clock and ordered timer callbacks for those paths.
#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace past {

using SimTime = uint64_t;  // milliseconds of virtual time

class EventQueue {
 public:
  using Callback = std::function<void()>;
  using EventId = uint64_t;

  SimTime now() const { return now_; }

  // Schedules `fn` to run at now() + delay. Returns an id usable with Cancel.
  EventId ScheduleAfter(SimTime delay, Callback fn);
  EventId ScheduleAt(SimTime when, Callback fn);

  // Cancels a pending event in O(1). Returns false if it already ran or was
  // cancelled.
  bool Cancel(EventId id);

  // Runs events until the queue is empty or `until` is reached (events
  // scheduled exactly at `until` are executed). Returns events executed.
  size_t RunUntil(SimTime until);

  // Runs everything currently scheduled (including events scheduled by
  // earlier events). Use with care with repeating timers.
  size_t RunAll();

  // Executes just the next pending event, if any.
  bool Step();

  // Events that are scheduled and will actually run (cancelled entries may
  // still sit in the heap awaiting their lazy pop, but they are not live).
  // This is the quiescence signal: a queue whose only contents are cancelled
  // husks reports 0 and is quiescent.
  size_t LiveCount() const { return live_.size(); }

  size_t pending() const { return heap_.size() - cancelled_.size(); }
  bool empty() const { return LiveCount() == 0; }

 private:
  struct Event {
    SimTime when;
    uint64_t sequence;  // FIFO among events with equal time
    EventId id;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.sequence > b.sequence;
    }
  };

  bool PopAndRun();

  SimTime now_ = 0;
  uint64_t next_sequence_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  // Ids still in the heap and runnable; an id leaves on run or cancel. Both
  // sets make Cancel and the pop-side cancellation check O(1) — the previous
  // linear scans of a cancelled vector dominated cancellation-heavy
  // workloads (every fabric message that is sent and every keep-alive round
  // that is rescheduled touches this path).
  std::unordered_set<EventId> live_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace past

#endif  // SRC_SIM_EVENT_QUEUE_H_
