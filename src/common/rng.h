// Deterministic pseudo-random number generation.
//
// Every source of randomness in the simulator flows from a seeded Rng so that
// experiments are exactly reproducible from their seed. The generator is
// xoshiro256** seeded via SplitMix64 (Blackman & Vigna), which is fast and
// has no observable statistical defects at the scales we use.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>

namespace past {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t NextU64();

  // Uniform in [0, bound), bound > 0. Uses rejection sampling to avoid
  // modulo bias.
  uint64_t NextBelow(uint64_t bound);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Standard normal deviate (Marsaglia polar method).
  double NextGaussian();

  // True with probability p.
  bool NextBool(double p);

  // Derives an independent child generator (stable given call order).
  Rng Fork();

 private:
  uint64_t state_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace past

#endif  // SRC_COMMON_RNG_H_
