// Quickstart: bring up a small PAST storage utility, insert a file, look it
// up from another node, and reclaim it.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "src/past/client.h"
#include "src/past/past_network.h"

int main() {
  using namespace past;

  // 1. Configure PAST: k = 5 replicas per file, the paper's storage
  //    management thresholds, and GreedyDual-Size caching.
  PastConfig config;
  config.k = 5;
  config.policy.t_pri = 0.1;
  config.policy.t_div = 0.05;
  config.cache_mode = CacheMode::kGreedyDualSize;

  PastryConfig pastry_config;  // b = 4, leaf set 32 (paper defaults)

  // 2. Build an overlay of 100 storage nodes, 50 MB advertised each.
  PastNetwork network(config, pastry_config, /*seed=*/2001);
  std::printf("joining 100 storage nodes...\n");
  NodeId access_node;
  for (int i = 0; i < 100; ++i) {
    access_node = network.AddStorageNode(50'000'000);
  }
  std::printf("overlay is up: %zu live nodes\n", network.overlay().live_count());

  // 3. A client with a 10 MB storage quota inserts a file.
  PastClient client(network, access_node, /*quota_bytes=*/10'000'000, /*seed=*/7);
  std::string content = "Hello, PAST! This file will be replicated on the five "
                        "nodes whose nodeIds are closest to its fileId.";
  ClientInsertResult inserted = client.InsertContent("hello.txt", content);
  if (!inserted.stored) {
    std::printf("insert failed!\n");
    return 1;
  }
  std::printf("inserted hello.txt -> fileId %s (%d attempt(s))\n",
              inserted.file_id.ToHex().c_str(), inserted.attempts);
  std::printf("quota remaining: %llu bytes\n",
              static_cast<unsigned long long>(client.card().quota_remaining()));

  // 4. Look the file up; Pastry routes to a nearby replica.
  LookupResult found = client.Lookup(inserted.file_id);
  std::printf("lookup: found=%d size=%llu hops=%d served_by=%s%s\n", found.found(),
              static_cast<unsigned long long>(found.file_size), found.hops,
              found.served_by.ToHex().substr(0, 8).c_str(),
              found.served_from_cache ? " (cache)" : "");

  // 5. Reclaim the storage; the quota is credited back.
  ReclaimResult reclaimed = client.Reclaim(inserted.file_id);
  std::printf("reclaimed %u replicas, %llu bytes; quota back to %llu\n",
              reclaimed.replicas_reclaimed,
              static_cast<unsigned long long>(reclaimed.bytes_reclaimed),
              static_cast<unsigned long long>(client.card().quota_remaining()));

  std::printf("global utilization now: %.4f%%\n", network.utilization() * 100.0);
  return 0;
}
