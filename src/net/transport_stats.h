// Accounting for messages and routing hops.
//
// PAST's evaluation reports lookup cost as the number of Pastry routing hops
// and argues about network traffic via message counts; this collector is
// shared by the Pastry network and the PAST layer.
#ifndef SRC_NET_TRANSPORT_STATS_H_
#define SRC_NET_TRANSPORT_STATS_H_

#include <cstdint>

namespace past {

class TransportStats {
 public:
  void RecordHop(double proximity_distance) {
    ++hops_;
    total_distance_ += proximity_distance;
  }
  void RecordMessage(uint64_t bytes) {
    ++messages_;
    bytes_sent_ += bytes;
  }
  void RecordRpc() { ++rpcs_; }

  void Reset() { *this = TransportStats(); }

  uint64_t hops() const { return hops_; }
  uint64_t messages() const { return messages_; }
  uint64_t rpcs() const { return rpcs_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  double total_distance() const { return total_distance_; }

 private:
  uint64_t hops_ = 0;
  uint64_t messages_ = 0;
  uint64_t rpcs_ = 0;
  uint64_t bytes_sent_ = 0;
  double total_distance_ = 0.0;
};

}  // namespace past

#endif  // SRC_NET_TRANSPORT_STATS_H_
