#include "src/chord/chord_node.h"

#include <algorithm>
#include <functional>

namespace past {

ChordNode::ChordNode(const NodeId& id, int successor_list_length)
    : id_(id), successor_list_length_(static_cast<size_t>(successor_list_length)) {}

void ChordNode::SetSuccessors(std::vector<NodeId> successors) {
  successors_ = std::move(successors);
  if (successors_.size() > successor_list_length_) {
    successors_.resize(successor_list_length_);
  }
}

bool ChordNode::RemoveSuccessor(const NodeId& id) {
  auto it = std::find(successors_.begin(), successors_.end(), id);
  if (it == successors_.end()) {
    return false;
  }
  successors_.erase(it);
  return true;
}

NodeId ChordNode::FingerStart(int i) const {
  uint128 step = static_cast<uint128>(1) << i;
  return NodeId(id_.value() + step);  // mod 2^128 wraps naturally
}

void ChordNode::RemoveFinger(const NodeId& id) {
  for (auto& finger : fingers_) {
    if (finger && *finger == id) {
      finger.reset();
    }
  }
}

bool ChordNode::InInterval(const NodeId& key, const NodeId& from, const NodeId& to) {
  // Half-open ring interval (from, to]: measured clockwise from `from`.
  if (from == to) {
    return true;  // full circle
  }
  uint128 span = from.ClockwiseDistance(to);
  uint128 offset = from.ClockwiseDistance(key);
  return offset > 0 && offset <= span;
}

std::optional<NodeId> ChordNode::ClosestPreceding(
    const NodeId& key, const std::function<bool(const NodeId&)>& alive) const {
  // Scan fingers from farthest to nearest for a live node in (this, key).
  std::optional<NodeId> best;
  auto consider = [&](const NodeId& candidate) {
    if (candidate == id_ || !alive(candidate)) {
      return;
    }
    // Strictly between us and the key: (id_, key) exclusive of key itself.
    if (InInterval(candidate, id_, key) && candidate != key) {
      if (!best || InInterval(candidate, *best, key)) {
        best = candidate;
      }
    }
  };
  for (int i = kFingerBits - 1; i >= 0; --i) {
    if (fingers_[static_cast<size_t>(i)]) {
      consider(*fingers_[static_cast<size_t>(i)]);
    }
  }
  for (const NodeId& s : successors_) {
    consider(s);
  }
  return best;
}

}  // namespace past
