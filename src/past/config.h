// PAST configuration (paper sections 3 and 4).
#ifndef SRC_PAST_CONFIG_H_
#define SRC_PAST_CONFIG_H_

#include <cstdint>

#include "src/storage/policies.h"

namespace past {

// How a diverting node picks the leaf-set member to hold a diverted replica.
// The paper's policy is "maximal remaining free space"; the alternatives
// exist for the ablation bench.
enum class DiversionSelection {
  kMaxFreeSpace,  // paper policy
  kRandom,        // random eligible node
  kFirstFit,      // first eligible node that would accept
};

enum class CacheMode {
  kNone,
  kLru,
  kGreedyDualSize,  // paper policy
};

struct PastConfig {
  // Number of replicas per file. Chosen to meet availability targets; the
  // evaluation fixes k = 5. Must satisfy k <= l/2 + 1.
  uint32_t k = 5;

  // Replica / file diversion thresholds (paper defaults).
  StoragePolicy policy;

  // Enables replica diversion into the leaf set (section 3.3).
  bool enable_replica_diversion = true;

  // Enables file diversion: on a negative ack the client re-salts the fileId
  // and retries elsewhere in the nodeId space (section 3.4).
  bool enable_file_diversion = true;

  // Total insert attempts per file (1 original + 3 re-salted retries).
  int max_insert_attempts = 4;

  // Caching (section 4): eviction policy and the admission fraction c — a
  // routed-through file is cached only if its size is below c times the
  // node's current cache capacity.
  CacheMode cache_mode = CacheMode::kNone;
  double cache_fraction_c = 1.0;

  // Diversion target selection policy (ablation; paper uses kMaxFreeSpace).
  DiversionSelection diversion_selection = DiversionSelection::kMaxFreeSpace;

  // When true, membership changes trigger replica maintenance (section 3.5).
  // Storage experiments without churn disable it to skip the scan.
  bool enable_maintenance = true;

  // Per-phase timeout for the event-driven client operations (virtual ms).
  // When a protocol exchange still has unanswered messages this long after
  // they were sent, the op presumes them lost and takes its timeout path
  // (rollback + client re-salt retry for inserts). Must comfortably exceed
  // the worst-case chained delivery latency of one exchange so that merely
  // slow (delayed-fault) messages are not misread as drops.
  uint64_t op_timeout_ms = 2000;
};

}  // namespace past

#endif  // SRC_PAST_CONFIG_H_
