#include "src/cache/file_cache.h"

namespace past {

FileCache::FileCache(std::unique_ptr<EvictionPolicy> policy, double c_fraction)
    : policy_(std::move(policy)), c_fraction_(c_fraction) {}

void FileCache::BindMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metric_hits_ = metric_misses_ = metric_insertions_ = metric_evictions_ = nullptr;
    return;
  }
  metric_hits_ = &registry->GetCounter("node.cache.hits");
  metric_misses_ = &registry->GetCounter("node.cache.misses");
  metric_insertions_ = &registry->GetCounter("node.cache.insertions");
  metric_evictions_ = &registry->GetCounter("node.cache.evictions");
  // Replay anything tallied before binding so registry and fields agree.
  metric_hits_->Inc(hits_);
  metric_misses_->Inc(misses_);
  metric_insertions_->Inc(insertions_);
  metric_evictions_->Inc(evictions_);
}

void FileCache::EvictEntry(const FileId& id) {
  auto it = entries_.find(id);
  if (it != entries_.end()) {
    used_ -= it->second.size;
    entries_.erase(it);
    ++evictions_;
    if (metric_evictions_ != nullptr) {
      metric_evictions_->Inc();
    }
  }
}

bool FileCache::Insert(const FileId& id, uint64_t size, uint64_t budget, ContentRef content) {
  if (entries_.count(id) > 0) {
    return false;  // already cached
  }
  // Admission rule: size must be less than c * current cache size, where the
  // cache size is the portion of the disk not used by replicas.
  if (size == 0 || static_cast<double>(size) >= c_fraction_ * static_cast<double>(budget)) {
    return false;
  }
  // Make room.
  while (used_ + size > budget) {
    auto victim = policy_->EvictVictim();
    if (!victim) {
      return false;
    }
    EvictEntry(*victim);
  }
  entries_[id] = Entry{size, std::move(content)};
  used_ += size;
  policy_->OnInsert(id, size);
  ++insertions_;
  if (metric_insertions_ != nullptr) {
    metric_insertions_->Inc();
  }
  return true;
}

bool FileCache::Lookup(const FileId& id, bool touch) {
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    ++misses_;
    if (metric_misses_ != nullptr) {
      metric_misses_->Inc();
    }
    return false;
  }
  if (touch) {
    policy_->OnHit(id, it->second.size);
  }
  ++hits_;
  if (metric_hits_ != nullptr) {
    metric_hits_->Inc();
  }
  return true;
}

bool FileCache::Remove(const FileId& id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return false;
  }
  used_ -= it->second.size;
  entries_.erase(it);
  policy_->OnRemove(id);
  return true;
}

std::vector<std::pair<FileId, uint64_t>> FileCache::Entries() const {
  std::vector<std::pair<FileId, uint64_t>> out;
  out.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) {
    out.emplace_back(id, entry.size);
  }
  return out;
}

std::optional<uint64_t> FileCache::SizeOf(const FileId& id) const {
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return std::nullopt;
  }
  return it->second.size;
}

FileCache::ContentRef FileCache::ContentOf(const FileId& id) const {
  auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : it->second.content;
}

void FileCache::ShrinkToBudget(uint64_t budget) {
  while (used_ > budget) {
    auto victim = policy_->EvictVictim();
    if (!victim) {
      return;
    }
    EvictEntry(*victim);
  }
}

}  // namespace past
