// Result types for the PAST client-visible operations.
//
// All three operations report their outcome the same way: a status enum is
// the source of truth, and the legacy boolean views (`found()`,
// `accepted()`) are derived accessors kept for migration.
#ifndef SRC_PAST_RESULTS_H_
#define SRC_PAST_RESULTS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/file_id.h"
#include "src/common/node_id.h"
#include "src/crypto/certificates.h"

namespace past {

enum class InsertStatus {
  kStored,          // k replicas created, receipts returned
  kNoSpace,         // negative ack: neither the k closest nor their leaf sets
                    // could accommodate the file (triggers file diversion)
  kDuplicateFileId, // fileId collision: the later insert is rejected
  kBadCertificate,  // certificate failed verification at the root
  kTimeout,         // a protocol message was lost in transit (SimTransport
                    // fault injection); the client retries with a new salt
};

enum class LookupStatus {
  kFound,
  kNotFound,
  kTimeout,  // request or fetch reply lost in transit; the client may retry
};

enum class ReclaimStatus {
  kReclaimed,       // owner verified, >= 1 replica dropped, receipts returned
  kNotFound,        // certificate fine but no replica was stored under the id
  kBadCertificate,  // reclaim certificate failed signature verification
  kNotOwner,        // a storing node's file certificate names a different owner
};

const char* ToString(InsertStatus status);
const char* ToString(LookupStatus status);
const char* ToString(ReclaimStatus status);

struct InsertResult {
  InsertStatus status = InsertStatus::kNoSpace;

  bool stored() const { return status == InsertStatus::kStored; }

  // Replicas actually created (== k on success).
  uint32_t replicas_stored = 0;
  // How many of those were diverted into the leaf set.
  uint32_t replicas_diverted = 0;
  // Pastry hops taken by the insert message.
  int route_hops = 0;
  // Fabric messages the operation put on the wire and the simulated
  // end-to-end latency they accumulated (both 0-latency under
  // InlineTransport).
  uint64_t messages = 0;
  double latency_ms = 0.0;
  std::vector<StoreReceipt> receipts;
};

struct LookupResult {
  LookupStatus status = LookupStatus::kNotFound;

  // Derived accessor (migration shim for the old `bool found` field).
  bool found() const { return status == LookupStatus::kFound; }

  // True when a cached copy (not one of the k replicas) served the request.
  bool served_from_cache = false;
  // True when the cached copy was located through a cooperative-cache probe
  // to a leaf-set broker rather than met on the route path.
  bool via_coop = false;
  // True when the serving replica was a diverted one reached via pointer
  // (costs one extra hop, paper section 3.3).
  bool via_diversion_pointer = false;
  uint64_t file_size = 0;
  // Routing hops until the file was found (including the pointer hop).
  int hops = 0;
  // Total proximity distance traversed.
  double distance = 0.0;
  NodeId served_by;
  // Fabric messages sent for this lookup and the simulated end-to-end
  // latency of the fetch (request leg over the route plus the reply leg
  // carrying the bytes back; 0 under InlineTransport).
  uint64_t messages = 0;
  double latency_ms = 0.0;
  // The file bytes, when the insert supplied content (null for size-only
  // trace experiments).
  std::shared_ptr<const std::string> content;
};

struct ReclaimResult {
  ReclaimStatus status = ReclaimStatus::kNotFound;

  // Derived accessor (migration shim for the old `bool accepted` field):
  // the certificates all verified, whether or not anything was stored.
  bool accepted() const {
    return status == ReclaimStatus::kReclaimed || status == ReclaimStatus::kNotFound;
  }

  uint32_t replicas_reclaimed = 0;
  uint64_t bytes_reclaimed = 0;
  std::vector<ReclaimReceipt> receipts;
};

inline const char* ToString(InsertStatus status) {
  switch (status) {
    case InsertStatus::kStored:
      return "stored";
    case InsertStatus::kNoSpace:
      return "no_space";
    case InsertStatus::kDuplicateFileId:
      return "duplicate_file_id";
    case InsertStatus::kBadCertificate:
      return "bad_certificate";
    case InsertStatus::kTimeout:
      return "timeout";
  }
  return "unknown";
}

inline const char* ToString(LookupStatus status) {
  switch (status) {
    case LookupStatus::kFound:
      return "found";
    case LookupStatus::kNotFound:
      return "not_found";
    case LookupStatus::kTimeout:
      return "timeout";
  }
  return "unknown";
}

inline const char* ToString(ReclaimStatus status) {
  switch (status) {
    case ReclaimStatus::kReclaimed:
      return "reclaimed";
    case ReclaimStatus::kNotFound:
      return "not_found";
    case ReclaimStatus::kBadCertificate:
      return "bad_certificate";
    case ReclaimStatus::kNotOwner:
      return "not_owner";
  }
  return "unknown";
}

}  // namespace past

#endif  // SRC_PAST_RESULTS_H_
