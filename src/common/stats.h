// Lightweight statistics helpers used by the experiment harness.
#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace past {

// Streaming mean / variance / min / max (Welford's algorithm).
class RunningStat {
 public:
  void Add(double x);

  uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Fixed-bucket histogram over [0, bucket_width * num_buckets); overflow goes
// in the final bucket.
class Histogram {
 public:
  Histogram(double bucket_width, size_t num_buckets);

  void Add(double x);
  uint64_t BucketCount(size_t i) const { return buckets_[i]; }
  size_t num_buckets() const { return buckets_.size(); }
  uint64_t total() const { return total_; }

  // Linear-interpolated quantile estimate, q in [0, 1].
  double Quantile(double q) const;

 private:
  double bucket_width_;
  std::vector<uint64_t> buckets_;
  uint64_t total_ = 0;
};

// Exact percentile over a stored sample (for small/medium samples).
double Percentile(std::vector<double> values, double q);

}  // namespace past

#endif  // SRC_COMMON_STATS_H_
