#include "src/pastry/leaf_set.h"

#include <algorithm>

namespace past {

LeafSet::LeafSet(const NodeId& owner, int capacity_per_side)
    : owner_(owner), capacity_per_side_(capacity_per_side) {}

bool LeafSet::InsertSide(std::vector<NodeId>& side, const NodeId& id, bool clockwise) {
  auto directed = [&](const NodeId& n) {
    return clockwise ? owner_.ClockwiseDistance(n) : n.ClockwiseDistance(owner_);
  };
  uint128 d = directed(id);
  auto pos = std::lower_bound(side.begin(), side.end(), id, [&](const NodeId& a, const NodeId& b) {
    return directed(a) < directed(b);
  });
  // `pos` may point at an equal-distance element, i.e. the id itself.
  if (pos != side.end() && *pos == id) {
    return false;
  }
  if (side.size() == static_cast<size_t>(capacity_per_side_)) {
    if (d >= directed(side.back())) {
      return false;  // farther than everything we keep
    }
    side.pop_back();
    pos = std::lower_bound(side.begin(), side.end(), id,
                           [&](const NodeId& a, const NodeId& b) {
                             return directed(a) < directed(b);
                           });
  }
  side.insert(pos, id);
  return true;
}

bool LeafSet::Insert(const NodeId& id) {
  if (id == owner_) {
    return false;
  }
  // A node is a candidate for both sides; with >= l+1 nodes in the system the
  // capacity limits naturally make the sides disjoint.
  bool inserted_larger = InsertSide(larger_, id, /*clockwise=*/true);
  bool inserted_smaller = InsertSide(smaller_, id, /*clockwise=*/false);
  return inserted_larger || inserted_smaller;
}

bool LeafSet::Remove(const NodeId& id) {
  auto erase_from = [&](std::vector<NodeId>& side) {
    auto it = std::find(side.begin(), side.end(), id);
    if (it == side.end()) {
      return false;
    }
    side.erase(it);
    return true;
  };
  bool a = erase_from(larger_);
  bool b = erase_from(smaller_);
  return a || b;
}

bool LeafSet::Contains(const NodeId& id) const {
  return std::find(larger_.begin(), larger_.end(), id) != larger_.end() ||
         std::find(smaller_.begin(), smaller_.end(), id) != smaller_.end();
}

std::vector<NodeId> LeafSet::All() const {
  std::vector<NodeId> all = larger_;
  for (const NodeId& id : smaller_) {
    if (std::find(all.begin(), all.end(), id) == all.end()) {
      all.push_back(id);
    }
  }
  return all;
}

bool LeafSet::Covers(const NodeId& key) const {
  if (key == owner_) {
    return true;
  }
  // The covered arc runs counterclockwise from the farthest smaller member to
  // the farthest larger member (through the owner). With an empty side, the
  // arc boundary is the owner itself.
  uint128 cw_reach = larger_.empty() ? 0 : owner_.ClockwiseDistance(larger_.back());
  uint128 ccw_reach = smaller_.empty() ? 0 : smaller_.back().ClockwiseDistance(owner_);
  uint128 cw_key = owner_.ClockwiseDistance(key);
  uint128 ccw_key = key.ClockwiseDistance(owner_);
  return cw_key <= cw_reach || ccw_key <= ccw_reach;
}

NodeId LeafSet::ClosestTo(const NodeId& key) const {
  NodeId best = owner_;
  for (const auto* side : {&larger_, &smaller_}) {
    for (const NodeId& id : *side) {
      if (id.CloserTo(key, best)) {
        best = id;
      }
    }
  }
  return best;
}

size_t LeafSet::size() const { return All().size(); }

bool LeafSet::full() const {
  return larger_.size() == static_cast<size_t>(capacity_per_side_) &&
         smaller_.size() == static_cast<size_t>(capacity_per_side_);
}

}  // namespace past
