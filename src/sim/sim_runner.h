// SimRunner: deterministic whole-system simulation soak.
//
// One seed drives everything: a ChurnScheduler timeline of client operations
// interleaved with joins, silent crashes and partitions is executed against
// a full PAST deployment over the SimTransport with a probabilistic fault
// plan active. At periodic quiescent checkpoints the runner zeroes the fault
// plan, runs the failure-detection horizon and a maintenance sweep, finalizes
// in-flight reclaims, reconciles genuinely-lost files, and hands the network
// to the InvariantChecker; probe lookups then confirm every surviving file
// is still reachable. The first violation aborts the run with a description.
//
// MinimizeFailure shrinks a failing configuration: binary search for the
// shortest failing schedule prefix, then pruning of whole event classes,
// then a final re-bisect. Because schedules are generated in full and only
// filtered at execution, every shrink step replays a sub-multiset of the
// original events. SerializeSimConfig / ParseSimConfig round-trip a config
// through the text repro files that `sim_soak --repro` loads.
#ifndef SRC_SIM_SIM_RUNNER_H_
#define SRC_SIM_SIM_RUNNER_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/net/fault_plan.h"
#include "src/sim/churn_schedule.h"

namespace past {

inline constexpr uint64_t kNoCorruption = std::numeric_limits<uint64_t>::max();
inline constexpr size_t kAllEvents = std::numeric_limits<size_t>::max();

struct SimConfig {
  uint64_t seed = 1;

  // Deployment shape.
  size_t num_nodes = 24;
  uint64_t capacity_per_node = 4'000'000;
  uint32_t k = 3;
  size_t num_clients = 3;
  uint64_t quota_per_client = 48'000'000;

  // Cooperative cache tier (PastConfig::enable_coop_cache) on every node.
  // Default off: the soak's baseline fingerprints predate the coop tier.
  bool coop_cache = false;

  // Durable stores: every node journals into a shared in-memory FaultEnv
  // (write-ahead log + replay; src/storage/wal.h). With no injected storage
  // faults the run is bit-identical to the in-memory default — the journal
  // draws no entropy and commits always succeed. Required for kRecover
  // events to bring a node back with its old directory contents.
  bool durable_store = false;

  // Timeline.
  ScheduleOptions schedule;
  // Invariant checkpoint every this many schedule positions (a final
  // checkpoint always runs at end of schedule).
  size_t checkpoint_every = 40;
  // Client operations allowed in flight at once. 1 (the default) drives
  // every op to completion before the next schedule position — the classic
  // serialized soak. Above 1, ops are submitted through the async engine
  // (PastClient::Begin*) and overlap on the virtual timeline; each
  // checkpoint first audits the mid-flight invariants, then drains all ops
  // before the quiescent protocol runs.
  size_t max_in_flight = 1;
  // Execute only schedule positions [0, max_events) — the minimizer's
  // truncation knob. kAllEvents means the full timeline.
  size_t max_events = kAllEvents;
  // Event classes the runner executes; disabled events are skipped without
  // disturbing the rest of the timeline — the minimizer's pruning knob.
  std::array<bool, kSimEventClassCount> enabled = {true, true, true, true,
                                                   true, true, true};

  // Fault plan active between checkpoints.
  FaultPlan faults{/*drop*/ 0.03, /*duplicate*/ 0.02, /*delay_p*/ 0.05, /*delay_ms*/ 40.0};

  // Test-only sabotage: after executing the event at this schedule position,
  // silently corrupt one node's store (see NodeStore::TestOnlyCorruptDrop-
  // Replica) so the next checkpoint must flag it. kNoCorruption disables.
  uint64_t corrupt_at_event = kNoCorruption;
};

struct SimResult {
  bool ok = false;
  std::string failure;  // empty iff ok
  size_t events_executed = 0;
  size_t checkpoints = 0;

  uint64_t files_inserted = 0;
  uint64_t files_reclaimed = 0;
  uint64_t files_lost = 0;
  uint64_t lookups = 0;
  uint64_t joins = 0;
  uint64_t crashes = 0;
  uint64_t partitions = 0;
  // kRecover accounting: nodes taken down and brought back with their
  // directory, and what the rejoin audit kept/dropped (src/past RejoinOutcome).
  uint64_t recoveries = 0;
  uint64_t replicas_recovered = 0;
  uint64_t replicas_dropped = 0;

  // SHA-1 hex over the generated timeline / the final network state. Equal
  // seeds must produce equal fingerprints run to run.
  std::string schedule_fingerprint;
  std::string state_fingerprint;
};

class SimRunner {
 public:
  explicit SimRunner(const SimConfig& config);
  SimResult Run();

 private:
  SimConfig config_;
};

struct MinimizeOutcome {
  SimConfig minimized;        // re-verified failing configuration
  size_t original_events = 0;   // schedule positions executed by the input
  size_t minimized_events = 0;  // positions the minimized config replays
  std::vector<std::string> pruned_classes;
  std::string failure;  // failure of the minimized config
  size_t runs = 0;      // re-executions the search needed
};

// Shrinks `failing`; nullopt if the configuration does not actually fail.
std::optional<MinimizeOutcome> MinimizeFailure(const SimConfig& failing);

// Text repro format: "key=value" lines plus '#' comments; unknown keys are
// ignored so old binaries load newer files. `failure` is embedded as a
// comment for humans.
std::string SerializeSimConfig(const SimConfig& config, std::string_view failure = {});
std::optional<SimConfig> ParseSimConfig(const std::string& text);

}  // namespace past

#endif  // SRC_SIM_SIM_RUNNER_H_
