// Minimal leveled logging for the simulator.
//
// Experiments run millions of operations, so logging must be zero-cost when
// disabled: the macro short-circuits before evaluating the stream expression.
#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace past {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

// Global log threshold; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace log_internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace log_internal
}  // namespace past

#define PAST_LOG(level)                                       \
  if (::past::LogLevel::level < ::past::GetLogLevel()) {      \
  } else                                                      \
    ::past::log_internal::LogMessage(::past::LogLevel::level, \
                                     __FILE__, __LINE__)      \
        .stream()

#endif  // SRC_COMMON_LOGGING_H_
