#include "src/pastry/network.h"

#include <algorithm>

#include "src/common/logging.h"

namespace past {

PastryNetwork::PastryNetwork(const PastryConfig& config, uint64_t seed)
    : config_(config), rng_(seed), topology_(rng_.NextU64()) {
  dir_.ctx = this;
  dir_.intern = &PastryNetwork::DirIntern;
  dir_.resolve = &PastryNetwork::DirResolve;
  dir_.alive = &PastryNetwork::DirAlive;
  dir_.distance = &PastryNetwork::DirDistance;
}

PastryNetwork::~PastryNetwork() {
  // Nodes live in the arena; destroy them while the arena (a later-destroyed
  // member would be UB here — it is declared first) is still alive so the
  // routing rows they free land back in its lists.
  for (PastryNode* n : slots_) {
    if (n != nullptr) {
      arena_.Destroy(n);
    }
  }
}

uint32_t PastryNetwork::DirIntern(void* ctx, const NodeId& id) {
  return static_cast<PastryNetwork*>(ctx)->Intern(id);
}

const NodeId& PastryNetwork::DirResolve(void* ctx, uint32_t index) {
  return static_cast<PastryNetwork*>(ctx)->ids_by_index_[index];
}

bool PastryNetwork::DirAlive(void* ctx, uint32_t index) {
  return static_cast<PastryNetwork*>(ctx)->alive_bits_[index] != 0;
}

double PastryNetwork::DirDistance(void* ctx, const NodeId& a, const NodeId& b) {
  // Unregistered endpoints (dead nodes left the topology) are maximally far,
  // so proximity comparisons never prefer them.
  return static_cast<PastryNetwork*>(ctx)->topology_.DistanceOr(a, b, 1e9);
}

NodeId PastryNetwork::RandomNodeId() {
  for (;;) {
    NodeId id(rng_.NextU64(), rng_.NextU64());
    if (!index_.Contains(id)) {
      return id;
    }
  }
}

PastryNetwork::NodeIndex PastryNetwork::Intern(const NodeId& id) {
  // Known ids are the overwhelmingly common case (every Learn re-interns its
  // argument), and answering them from Find keeps Intern non-mutating:
  // TryEmplace may rehash even when the key exists (growth is checked before
  // the probe), which would invalidate index_ pointers held by callers up
  // the stack — node() during a batched-join flush, for one.
  if (const NodeIndex* existing = index_.Find(id)) {
    return *existing;
  }
  auto [slot, inserted] = index_.TryEmplace(id, static_cast<NodeIndex>(slots_.size()));
  if (inserted) {
    slots_.push_back(nullptr);
    alive_bits_.push_back(0);
    ids_by_index_.push_back(id);
    if (join_batch_active_) {
      pending_head_.push_back(kInvalidIndex);
      pending_tail_.push_back(kInvalidIndex);
    }
  }
  return *slot;
}

PastryNode* PastryNetwork::InstallNode(const NodeId& id) {
  NodeIndex idx = Intern(id);
  if (slots_[idx] != nullptr) {
    arena_.Destroy(slots_[idx]);
  }
  slots_[idx] = arena_.Create<PastryNode>(id, config_, &dir_, &arena_);
  alive_bits_[idx] = 1;
  return slots_[idx];
}

NodeId PastryNetwork::CreateNode() {
  NodeId id = RandomNodeId();
  Coordinate location{rng_.NextDouble(), rng_.NextDouble()};
  Join(id, location);
  return id;
}

NodeId PastryNetwork::CreateNodeNear(const Coordinate& center, double spread) {
  NodeId id = RandomNodeId();
  // Spread handled by the topology's own generator for determinism.
  Coordinate location = center;
  topology_.PlaceNear(id, center, spread);
  location = topology_.LocationOf(id);
  topology_.Remove(id);  // Join() re-registers it
  Join(id, location);
  return id;
}

bool PastryNetwork::Join(const NodeId& id, const Coordinate& location) {
  if (IsAlive(id)) {
    return false;
  }

  // Find the proximally nearest live node to bootstrap from, before the new
  // node occupies its own place in the topology.
  NodeId seed;
  bool have_seed = !ring_.empty();
  if (have_seed) {
    seed = topology_.NearestTo(location);
  }

  topology_.PlaceNear(id, location, 0.0);
  PastryNode* x = InstallNode(id);

  if (have_seed) {
    // Route the special join message from the seed toward the new id; the
    // path supplies routing rows, its terminus Z supplies the leaf set, and
    // the seed supplies the neighborhood set (paper section 2.1).
    RouteResult route = Route(seed, id);
    PastryNode* z = this->node(route.destination());

    for (const NodeId& member : z->leaf_set().All()) {
      if (IsAlive(member)) {
        x->leaf_set().Insert(member);
      }
    }
    x->leaf_set().Insert(z->id());

    for (const NodeId& visited : route.path) {
      PastryNode* p = this->node(visited);
      if (p == nullptr) {
        continue;
      }
      x->Learn(p->id());
      for (const NodeId& entry : p->routing_table().Entries()) {
        if (IsAlive(entry)) {
          x->routing_table().Consider(entry);
        }
      }
      for (const NodeId& member : p->leaf_set().All()) {
        if (IsAlive(member)) {
          x->routing_table().Consider(member);
        }
      }
    }

    PastryNode* a = this->node(seed);
    x->neighborhood().Consider(a->id());
    for (const NodeId& neighbor : a->neighborhood().members()) {
      if (IsAlive(neighbor)) {
        x->neighborhood().Consider(neighbor);
      }
    }

    AnnounceNewNode(*x);
  }

  ring_.Insert(id);
  NotifyJoined(id);
  return true;
}

void PastryNetwork::AnnounceNewNode(PastryNode& node) {
  // The arriving node transmits its state to every node it now references;
  // each of them folds the newcomer into its own state. In batch mode the
  // Learn is queued on the target instead of applied — same per-target
  // order, applied before the target's state is next read.
  std::vector<NodeId> targets = node.leaf_set().All();
  for (const NodeId& entry : node.routing_table().Entries()) {
    targets.push_back(entry);
  }
  for (const NodeId& member : node.neighborhood().members()) {
    targets.push_back(member);
  }
  std::sort(targets.begin(), targets.end());
  targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
  for (const NodeId& t : targets) {
    const NodeIndex* found = index_.Find(t);
    if (found == nullptr) {
      continue;
    }
    const NodeIndex ti = *found;  // value copy: Learn below probes index_
    if (slots_[ti] == nullptr || alive_bits_[ti] == 0) {
      continue;
    }
    if (join_batch_active_) {
      uint32_t link = static_cast<uint32_t>(pending_pool_.size());
      pending_pool_.push_back(PendingLearn{kInvalidIndex, node.id()});
      if (pending_tail_[ti] == kInvalidIndex) {
        pending_head_[ti] = link;
      } else {
        pending_pool_[pending_tail_[ti]].next = link;
      }
      pending_tail_[ti] = link;
    } else {
      slots_[ti]->Learn(node.id());
    }
    stats_.RecordMessage(64);
  }
}

void PastryNetwork::BeginJoinBatch() {
  join_batch_active_ = true;
  pending_head_.assign(slots_.size(), kInvalidIndex);
  pending_tail_.assign(slots_.size(), kInvalidIndex);
  // Ring inserts batch too: sorted-vector insertion is an O(n) memmove, and
  // at bulk-build scale the moves (not the Learns) dominate wall time.
  ring_.BeginBulkLoad();
}

void PastryNetwork::FlushJoinBatch() {
  for (NodeIndex i = 0; i < pending_head_.size(); ++i) {
    FlushPending(i);
  }
  pending_pool_.clear();
}

void PastryNetwork::EndJoinBatch() {
  FlushJoinBatch();
  ring_.EndBulkLoad();
  join_batch_active_ = false;
  pending_head_.clear();
  pending_head_.shrink_to_fit();
  pending_tail_.clear();
  pending_tail_.shrink_to_fit();
  pending_pool_.shrink_to_fit();
}

void PastryNetwork::FlushPending(NodeIndex index) {
  uint32_t cur = pending_head_[index];
  if (cur == kInvalidIndex) {
    return;
  }
  pending_head_[index] = kInvalidIndex;
  pending_tail_[index] = kInvalidIndex;
  PastryNode* w = slots_[index];
  while (cur != kInvalidIndex) {
    // Copy out: Learn may intern a new id, growing pending_pool_'s siblings
    // is impossible but keeping a reference across a mutation is fragile.
    PendingLearn entry = pending_pool_[cur];
    if (w != nullptr) {
      w->Learn(entry.newcomer);
    }
    cur = entry.next;
  }
}

void PastryNetwork::BuildInitialNetwork(size_t n) {
  for (size_t i = 0; i < n; ++i) {
    CreateNode();
  }
}

void PastryNetwork::FailNode(const NodeId& id) {
  FailNodeSilently(id);
  RepairAfterFailure(id);
  NotifyFailed(id);
}

void PastryNetwork::FailNodeSilently(const NodeId& id) {
  const NodeIndex* idx = index_.Find(id);
  if (idx == nullptr || alive_bits_[*idx] == 0) {
    return;
  }
  alive_bits_[*idx] = 0;
  ring_.Erase(id);
  topology_.Remove(id);
}

void PastryNetwork::RepairAfterFailure(const NodeId& failed) {
  // All members of the failed node's leaf set detect the failure, purge the
  // reference, and rebuild from the leaf sets of their remaining members —
  // overlap among adjacent leaf sets makes the replacement reachable.
  //
  // Leaf-set references to `failed` are confined to its former ring
  // neighborhood: a leaf set tracks the l/2 numerically closest live ids per
  // side, so only nodes within ~l live-ring positions can legitimately hold
  // it. Scanning a 2l window per side around the failed id's former position
  // (instead of the full ring) makes repair O(l) per failure instead of
  // O(n) — at 100k nodes the full scan made each crash a 100k-probe sweep
  // and dominated churn-heavy runs. Routing tables and neighborhood sets
  // elsewhere may keep a stale entry; every consumer filters through
  // IsAlive, routing Forgets dead entries on contact, and
  // RepairRoutingTables() batch-repairs lazily — the paper's keep-alive
  // model. Small rings (< 4l nodes) degenerate to the full scan.
  if (ring_.empty()) {
    return;
  }
  const size_t n = ring_.size();
  const size_t window = static_cast<size_t>(config_.leaf_set_size) * 2;
  const size_t count = std::min(n, 2 * window);
  std::vector<NodeId> affected;
  auto consider = [&](const NodeId& id) {
    PastryNode* w = node(id);
    if (w != nullptr && (w->leaf_set().Contains(failed) || w->routing_table().Remove(failed) ||
                         w->neighborhood().Contains(failed))) {
      affected.push_back(id);
    }
  };
  if (count == n) {
    for (const NodeId& id : ring_) {
      consider(id);
    }
  } else {
    size_t start = ring_.LowerBound(failed.value());  // failed itself is erased
    size_t first = (start + n - window) % n;
    for (size_t i = 0; i < count; ++i) {
      consider(ring_.at((first + i) % n));
    }
  }
  for (const NodeId& id : affected) {
    node(id)->Forget(failed);
  }
  for (const NodeId& id : affected) {
    PastryNode* w = node(id);
    std::vector<NodeId> donors = w->leaf_set().All();
    for (const NodeId& donor : donors) {
      PastryNode* d = node(donor);
      if (d == nullptr || !IsAlive(donor)) {
        continue;
      }
      stats_.RecordRpc();
      for (const NodeId& candidate : d->leaf_set().All()) {
        if (IsAlive(candidate)) {
          w->leaf_set().Insert(candidate);
        }
      }
    }
  }
}

size_t PastryNetwork::DetectAndRepair() {
  // One keep-alive round: collect every dead node still referenced by a live
  // leaf set, then run the standard repair for each.
  std::vector<NodeId> detected;
  for (const NodeId& id : ring_) {
    PastryNode* w = node(id);
    for (const NodeId& member : w->leaf_set().All()) {
      stats_.RecordMessage(16);  // keep-alive probe
      if (!IsAlive(member) &&
          std::find(detected.begin(), detected.end(), member) == detected.end()) {
        detected.push_back(member);
      }
    }
  }
  for (const NodeId& dead : detected) {
    RepairAfterFailure(dead);
    NotifyFailed(dead);
  }
  return detected.size();
}

bool PastryNetwork::RecoverNode(const NodeId& id) {
  const NodeIndex* idx = index_.Find(id);
  if (idx == nullptr || alive_bits_[*idx] != 0) {
    return false;
  }
  // A recovering node contacts the nodes in its last known leaf set, obtains
  // their current leaf sets, and rebuilds. We reuse the join machinery with
  // the node's previous id; its stale state is discarded first (the index
  // stays interned — Join overwrites the slot).
  Coordinate location{rng_.NextDouble(), rng_.NextDouble()};
  if (slots_[*idx] != nullptr) {
    arena_.Destroy(slots_[*idx]);
    slots_[*idx] = nullptr;
  }
  return Join(id, location);
}

size_t PastryNetwork::RepairRoutingTables() {
  size_t repaired = 0;
  for (const NodeId& id : ring_) {
    PastryNode* w = node(id);
    RoutingTable& table = w->routing_table();
    for (int row = 0; row < table.rows(); ++row) {
      // Candidates for this row come from the same row of our row-mates
      // (they share the same prefix with us up to `row` digits) and from our
      // leaf set. Only bother while the row has known members.
      std::vector<NodeId> row_mates = table.Row(row);
      if (row_mates.empty()) {
        continue;
      }
      for (const NodeId& mate : row_mates) {
        PastryNode* m = node(mate);
        if (m == nullptr || !IsAlive(mate)) {
          continue;
        }
        stats_.RecordRpc();
        for (const NodeId& candidate : m->routing_table().Row(row)) {
          if (IsAlive(candidate) && table.Consider(candidate)) {
            ++repaired;
          }
        }
      }
    }
    for (const NodeId& member : w->leaf_set().All()) {
      if (IsAlive(member) && table.Consider(member)) {
        ++repaired;
      }
    }
  }
  return repaired;
}

RouteResult PastryNetwork::Route(const NodeId& from, const NodeId& key, const StopFn& stop) {
  return Route(from, key, stop, RouteOptions{});
}

RouteResult PastryNetwork::Route(const NodeId& from, const NodeId& key, const StopFn& stop,
                                 const RouteOptions& options) {
  TransportStats& stats = options.stats != nullptr ? *options.stats : stats_;
  Rng* rng = options.rng != nullptr ? options.rng : &rng_;

  RouteResult result;
  if (!IsAlive(from)) {
    return result;
  }
  NodeId current = from;
  result.path.push_back(current);
  if (stop && stop(current)) {
    result.stopped_early = true;
    return result;
  }
  // Hop bound as a safety net; Pastry terminates in ~log_2^b(N) steps.
  const int max_hops = 8 * NodeId::NumDigits(config_.b);
  result.path.reserve(static_cast<size_t>(NodeId::NumDigits(config_.b)) / 2);
  // Hoisted out of the hop loop: almost every deployment has no malicious
  // nodes, and the per-hop probe is measurable at routing rates.
  const bool any_malicious = !malicious_.empty();
  // Stats accounting is batched: hops and distance accumulate in the result
  // and land in the collector exactly once per route (RecordRoute), keeping
  // per-hop work down to the forwarding decision itself. The origin's
  // location is carried across hops so each hop costs one location probe.
  const Coordinate* current_loc = &topology_.LocationOf(current);
  // Scratch for deferred-forget mode, reused across hops; each batch of dead
  // references is paired with the node that observed them.
  std::vector<NodeId> hop_dead;
  for (int hop = 0; hop < max_hops; ++hop) {
    PastryNode* n = node(current);
    std::optional<NodeId> next;
    if (options.deferred_forgets != nullptr) {
      hop_dead.clear();
      next = n->NextHop(key, rng, &hop_dead);
      for (const NodeId& dead : hop_dead) {
        options.deferred_forgets->push_back({current, dead});
      }
    } else {
      next = n->NextHop(key, rng, nullptr);
    }
    if (!next) {
      break;  // current node is the destination
    }
    const Coordinate* next_loc = &topology_.LocationOf(*next);
    result.distance += TorusDistance(*current_loc, *next_loc);
    current_loc = next_loc;
    current = *next;
    result.path.push_back(current);
    // A malicious node accepts the message and silently drops it; the
    // message never reaches the application at this or any further node.
    if (any_malicious && IsMalicious(current)) {
      result.delivered = false;
      break;
    }
    if (stop && stop(current)) {
      result.stopped_early = true;
      break;
    }
    if (hop + 1 == max_hops) {
      PAST_LOG(kWarning) << "routing to " << key.ToHex() << " exceeded hop bound";
    }
  }
  stats.RecordRoute(static_cast<uint64_t>(result.hops()), result.distance);
  return result;
}

void PastryNetwork::SetMalicious(const NodeId& id, bool malicious) {
  malicious_.InsertOrAssign(id, malicious ? uint8_t{1} : uint8_t{0});
}

bool PastryNetwork::IsMalicious(const NodeId& id) const {
  const uint8_t* flag = malicious_.Find(id);
  return flag != nullptr && *flag != 0;
}

NodeId PastryNetwork::ClosestLive(const NodeId& key) const {
  std::vector<NodeId> closest = ring_.KClosest(key, 1);
  return closest.empty() ? NodeId() : closest.front();
}

void PastryNetwork::RemoveObserver(MembershipObserver* observer) {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), observer), observers_.end());
}

void PastryNetwork::NotifyJoined(const NodeId& id) {
  for (MembershipObserver* o : observers_) {
    o->OnNodeJoined(id);
  }
}

void PastryNetwork::NotifyFailed(const NodeId& id) {
  for (MembershipObserver* o : observers_) {
    o->OnNodeFailed(id);
  }
}

size_t PastryNetwork::CountLeafSetViolations() const {
  size_t violations = 0;
  const size_t per_side = static_cast<size_t>(config_.leaf_set_size) / 2;
  const size_t n = ring_.size();
  for (size_t i = 0; i < n; ++i) {
    const NodeId& id = ring_.at(i);
    const PastryNode* node_ptr = node(id);
    // Ground truth: walk the ring in each direction by index.
    std::vector<NodeId> expect_larger;
    for (size_t step = 1; step <= per_side && expect_larger.size() < n - 1; ++step) {
      size_t j = (i + step) % n;
      if (j == i) {
        break;
      }
      expect_larger.push_back(ring_.at(j));
    }
    std::vector<NodeId> expect_smaller;
    for (size_t step = 1; step <= per_side && expect_smaller.size() < n - 1; ++step) {
      size_t j = (i + n - (step % n)) % n;
      if (j == i) {
        break;
      }
      expect_smaller.push_back(ring_.at(j));
    }
    for (const NodeId& e : expect_larger) {
      std::span<const NodeId> larger = node_ptr->leaf_set().larger();
      if (std::find(larger.begin(), larger.end(), e) == larger.end()) {
        ++violations;
      }
    }
    for (const NodeId& e : expect_smaller) {
      std::span<const NodeId> smaller = node_ptr->leaf_set().smaller();
      if (std::find(smaller.begin(), smaller.end(), e) == smaller.end()) {
        ++violations;
      }
    }
  }
  return violations;
}

}  // namespace past
