// LookupOp: the lookup protocol (paper sections 2.2, 3.3, 4) as an
// event-driven state machine (async_op.h).
//
// Locating the file reuses Pastry routing (with the replica/cache stop
// predicate, the diversion-pointer hop, and the k-closest probe fallback);
// the fetch itself is then a two-message exchange on the fabric: a
// kLookupRequest riding the located route, and a kFetchReply carrying the
// file bytes straight back to the origin.
//
// State machine:
//
//   Start ──located──▶ fetch phase (request ▶ reply) ──▶ AfterFetch
//     │ not found                                           │ reply missing
//     ▼                                                     ▼
//   Finish(kNotFound)                                 Finish(kTimeout)
//
// Either fetch message lost in transit leaves the reply exchange
// uncompleted when the phase timeout fires — LookupStatus::kTimeout.
#ifndef SRC_PAST_OPS_LOOKUP_OP_H_
#define SRC_PAST_OPS_LOOKUP_OP_H_

#include <vector>

#include "src/past/ops/async_op.h"

namespace past {

class LookupOp : public AsyncOp {
 public:
  using Callback = std::function<void(const LookupResult&)>;

  LookupOp(PastNetwork& net, const NodeId& origin, const FileId& file_id, Callback callback);

  void Start();

  const LookupResult& result() const { return result_; }

 protected:
  void OnFinish() override;

 private:
  void OnFetchRequest(const Delivery&);  // at the serving node: read + reply
  void AfterFetch();
  void Finish();

  NodeId origin_;
  FileId file_id_;
  Callback callback_;

  NodeId served_;
  bool from_cache_ = false;
  std::vector<NodeId> route_path_;
  Exchange request_ex_;  // kLookupRequest at the serving node
  Exchange reply_ex_;    // kFetchReply back at the origin

  LookupResult result_;
};

}  // namespace past

#endif  // SRC_PAST_OPS_LOOKUP_OP_H_
