// Cache tests: GreedyDual-Size semantics, LRU semantics, and the FileCache
// container's budget handling (paper section 4).
#include <gtest/gtest.h>

#include "src/cache/file_cache.h"
#include "src/cache/gds_policy.h"
#include "src/cache/lru_policy.h"
#include "src/common/distributions.h"
#include "src/common/rng.h"

namespace past {
namespace {

FileId MakeFileId(uint32_t tag) {
  std::array<uint8_t, 20> bytes{};
  bytes[0] = static_cast<uint8_t>(tag >> 24);
  bytes[1] = static_cast<uint8_t>(tag >> 16);
  bytes[2] = static_cast<uint8_t>(tag >> 8);
  bytes[3] = static_cast<uint8_t>(tag);
  return FileId(bytes);
}

TEST(GdsPolicyTest, EvictsLargestFirstWhenUnreferenced) {
  // With c(d)=1, H = L + 1/size: big files have the smallest H.
  GdsPolicy gds;
  gds.OnInsert(MakeFileId(1), 100);
  gds.OnInsert(MakeFileId(2), 10000);
  gds.OnInsert(MakeFileId(3), 10);
  auto victim = gds.EvictVictim();
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, MakeFileId(2));
}

TEST(GdsPolicyTest, HitProtectsEntry) {
  GdsPolicy gds;
  gds.OnInsert(MakeFileId(1), 1000);
  gds.OnInsert(MakeFileId(2), 1000);
  // Age the cache: evicting raises L.
  gds.OnInsert(MakeFileId(3), 500000);
  ASSERT_EQ(*gds.EvictVictim(), MakeFileId(3));
  EXPECT_GT(gds.inflation(), 0.0);
  // A hit on 1 re-inflates its weight above 2's.
  gds.OnHit(MakeFileId(1), 1000);
  EXPECT_EQ(*gds.EvictVictim(), MakeFileId(2));
}

TEST(GdsPolicyTest, InflationRisesMonotonically) {
  GdsPolicy gds;
  for (uint32_t i = 0; i < 10; ++i) {
    gds.OnInsert(MakeFileId(i), 100 * (i + 1));
  }
  double last = gds.inflation();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(gds.EvictVictim().has_value());
    EXPECT_GE(gds.inflation(), last);
    last = gds.inflation();
  }
  EXPECT_FALSE(gds.EvictVictim().has_value());
}

TEST(GdsPolicyTest, RemoveDropsEntry) {
  GdsPolicy gds;
  gds.OnInsert(MakeFileId(1), 100);
  gds.OnRemove(MakeFileId(1));
  EXPECT_FALSE(gds.EvictVictim().has_value());
  gds.OnRemove(MakeFileId(99));  // unknown id: no-op
}

TEST(LruPolicyTest, EvictsLeastRecentlyUsed) {
  LruPolicy lru;
  lru.OnInsert(MakeFileId(1), 1);
  lru.OnInsert(MakeFileId(2), 1);
  lru.OnInsert(MakeFileId(3), 1);
  lru.OnHit(MakeFileId(1), 1);  // 2 is now the oldest
  EXPECT_EQ(*lru.EvictVictim(), MakeFileId(2));
  EXPECT_EQ(*lru.EvictVictim(), MakeFileId(3));
  EXPECT_EQ(*lru.EvictVictim(), MakeFileId(1));
  EXPECT_FALSE(lru.EvictVictim().has_value());
}

TEST(LruPolicyTest, RemoveDropsEntry) {
  LruPolicy lru;
  lru.OnInsert(MakeFileId(1), 1);
  lru.OnInsert(MakeFileId(2), 1);
  lru.OnRemove(MakeFileId(1));
  EXPECT_EQ(*lru.EvictVictim(), MakeFileId(2));
  EXPECT_FALSE(lru.EvictVictim().has_value());
}

TEST(FileCacheTest, InsertWithinBudget) {
  FileCache cache(std::make_unique<LruPolicy>(), 1.0);
  EXPECT_TRUE(cache.Insert(MakeFileId(1), 100, 1000));
  EXPECT_EQ(cache.used(), 100u);
  EXPECT_TRUE(cache.Lookup(MakeFileId(1)));
  EXPECT_FALSE(cache.Lookup(MakeFileId(2)));
}

TEST(FileCacheTest, AdmissionFractionRespected) {
  // c = 0.1: a file must be smaller than 10% of the budget.
  FileCache cache(std::make_unique<LruPolicy>(), 0.1);
  EXPECT_FALSE(cache.Insert(MakeFileId(1), 200, 1000));
  EXPECT_TRUE(cache.Insert(MakeFileId(2), 50, 1000));
}

TEST(FileCacheTest, FileAsLargeAsBudgetRejected) {
  FileCache cache(std::make_unique<LruPolicy>(), 1.0);
  // size >= c * budget is rejected (strict inequality in the paper).
  EXPECT_FALSE(cache.Insert(MakeFileId(1), 1000, 1000));
  EXPECT_TRUE(cache.Insert(MakeFileId(2), 999, 1000));
}

TEST(FileCacheTest, EvictsToMakeRoom) {
  FileCache cache(std::make_unique<LruPolicy>(), 1.0);
  EXPECT_TRUE(cache.Insert(MakeFileId(1), 400, 1000));
  EXPECT_TRUE(cache.Insert(MakeFileId(2), 400, 1000));
  EXPECT_TRUE(cache.Insert(MakeFileId(3), 400, 1000));  // evicts 1
  EXPECT_LE(cache.used(), 1000u);
  EXPECT_FALSE(cache.Lookup(MakeFileId(1), /*touch=*/false));
  EXPECT_TRUE(cache.Lookup(MakeFileId(2), /*touch=*/false));
  EXPECT_GT(cache.evictions(), 0u);
}

TEST(FileCacheTest, ShrinkToBudgetEvicts) {
  FileCache cache(std::make_unique<LruPolicy>(), 1.0);
  cache.Insert(MakeFileId(1), 300, 1000);
  cache.Insert(MakeFileId(2), 300, 1000);
  cache.Insert(MakeFileId(3), 300, 1000);
  cache.ShrinkToBudget(500);
  EXPECT_LE(cache.used(), 500u);
  EXPECT_EQ(cache.count(), 1u);
}

TEST(FileCacheTest, RemoveSpecificFile) {
  FileCache cache(std::make_unique<GdsPolicy>(), 1.0);
  cache.Insert(MakeFileId(1), 100, 1000);
  EXPECT_TRUE(cache.Remove(MakeFileId(1)));
  EXPECT_FALSE(cache.Remove(MakeFileId(1)));
  EXPECT_EQ(cache.used(), 0u);
}

TEST(FileCacheTest, SizeOfReportsWithoutTouching) {
  FileCache cache(std::make_unique<LruPolicy>(), 1.0);
  cache.Insert(MakeFileId(1), 123, 1000);
  auto size = cache.SizeOf(MakeFileId(1));
  ASSERT_TRUE(size.has_value());
  EXPECT_EQ(*size, 123u);
  EXPECT_FALSE(cache.SizeOf(MakeFileId(2)).has_value());
}

TEST(FileCacheTest, DuplicateInsertRejected) {
  FileCache cache(std::make_unique<LruPolicy>(), 1.0);
  EXPECT_TRUE(cache.Insert(MakeFileId(1), 100, 1000));
  EXPECT_FALSE(cache.Insert(MakeFileId(1), 100, 1000));
  EXPECT_EQ(cache.used(), 100u);
}

TEST(FileCacheTest, ZeroByteFilesNotCached) {
  FileCache cache(std::make_unique<LruPolicy>(), 1.0);
  EXPECT_FALSE(cache.Insert(MakeFileId(1), 0, 1000));
}

TEST(FileCacheTest, ZeroByteRejectionLeavesAccountingUntouched) {
  FileCache cache(std::make_unique<GdsPolicy>(), 1.0);
  ASSERT_TRUE(cache.Insert(MakeFileId(1), 400, 1000));
  EXPECT_FALSE(cache.Insert(MakeFileId(2), 0, 1000));
  EXPECT_EQ(cache.used(), 400u);
  EXPECT_EQ(cache.count(), 1u);
  EXPECT_EQ(cache.Entries().size(), 1u);
  // The rejected file never entered the policy either: evicting drains only
  // the real entry.
  cache.ShrinkToBudget(0);
  EXPECT_EQ(cache.used(), 0u);
  EXPECT_EQ(cache.count(), 0u);
}

TEST(GdsPolicyTest, ZeroSizeEntryIsSafeAndEvictedLast) {
  // H = L + 1/max(1, size): a zero-size entry must not divide by zero, and
  // it gets the largest weight so larger files are evicted first.
  GdsPolicy gds;
  gds.OnInsert(MakeFileId(1), 0);
  gds.OnInsert(MakeFileId(2), 1000);
  auto victim = gds.EvictVictim();
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, MakeFileId(2));
  auto last = gds.EvictVictim();
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(*last, MakeFileId(1));
}

TEST(FileCacheTest, ExactCapacityFitNeedsNoEviction) {
  FileCache cache(std::make_unique<GdsPolicy>(), 1.0);
  ASSERT_TRUE(cache.Insert(MakeFileId(1), 400, 1000));
  // 400 + 600 lands exactly on the budget: admitted with zero evictions.
  ASSERT_TRUE(cache.Insert(MakeFileId(2), 600, 1000));
  EXPECT_EQ(cache.used(), 1000u);
  EXPECT_EQ(cache.count(), 2u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(FileCacheTest, EvictionStopsAtExactFit) {
  FileCache cache(std::make_unique<GdsPolicy>(), 1.0);
  ASSERT_TRUE(cache.Insert(MakeFileId(1), 500, 1000));
  ASSERT_TRUE(cache.Insert(MakeFileId(2), 400, 1000));
  // Admitting 600 must evict entry 1 (largest ⇒ smallest GD-S weight) and
  // then stop: 400 + 600 fits the budget exactly.
  ASSERT_TRUE(cache.Insert(MakeFileId(3), 600, 1000));
  EXPECT_EQ(cache.used(), 1000u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.SizeOf(MakeFileId(1)).has_value());
  EXPECT_TRUE(cache.SizeOf(MakeFileId(2)).has_value());
  EXPECT_TRUE(cache.SizeOf(MakeFileId(3)).has_value());
}

TEST(FileCacheTest, EntriesSnapshotMatchesAccounting) {
  FileCache cache(std::make_unique<GdsPolicy>(), 1.0);
  ASSERT_TRUE(cache.Insert(MakeFileId(1), 300, 10'000));
  ASSERT_TRUE(cache.Insert(MakeFileId(2), 700, 10'000));
  ASSERT_TRUE(cache.Insert(MakeFileId(3), 1'000, 10'000));
  uint64_t sum = 0;
  for (const auto& [id, size] : cache.Entries()) {
    (void)id;
    sum += size;
  }
  EXPECT_EQ(sum, cache.used());
  EXPECT_EQ(cache.Entries().size(), cache.count());
  // Removal keeps the snapshot in lockstep.
  ASSERT_TRUE(cache.Remove(MakeFileId(2)));
  EXPECT_EQ(cache.Entries().size(), 2u);
  sum = 0;
  for (const auto& [id, size] : cache.Entries()) {
    (void)id;
    sum += size;
  }
  EXPECT_EQ(sum, cache.used());
}

// Comparative property: on a Zipf-like trace with varied sizes, GD-S should
// achieve at least as high a hit rate as LRU (the paper's Figure 8 finding).
TEST(CachePolicyComparisonTest, GdsBeatsLruOnSkewedTrace) {
  auto run = [](std::unique_ptr<EvictionPolicy> policy) {
    FileCache cache(std::move(policy), 1.0);
    const uint64_t budget = 50000;
    Rng rng(77);
    Zipf zipf(500, 0.9);
    std::vector<uint64_t> sizes(500);
    FileSizeDistribution dist(1312, 10517, 0.0, 1.1, 1000000);
    for (auto& s : sizes) {
      s = std::max<uint64_t>(1, dist.Sample(rng));
    }
    uint64_t hits = 0, refs = 0;
    for (int i = 0; i < 30000; ++i) {
      uint32_t f = static_cast<uint32_t>(zipf.Sample(rng));
      ++refs;
      if (cache.Lookup(MakeFileId(f))) {
        ++hits;
      } else {
        cache.Insert(MakeFileId(f), sizes[f], budget);
      }
    }
    return static_cast<double>(hits) / static_cast<double>(refs);
  };
  double gds_rate = run(std::make_unique<GdsPolicy>());
  double lru_rate = run(std::make_unique<LruPolicy>());
  EXPECT_GT(gds_rate, 0.1);
  EXPECT_GE(gds_rate, lru_rate - 0.02);
}

}  // namespace
}  // namespace past
