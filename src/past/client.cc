#include "src/past/client.h"

#include "src/common/logging.h"
#include "src/past/ops/op_engine.h"

namespace past {

// Drives the file-diversion retry loop (paper section 3.4) as a chain of
// engine inserts: each attempt issues a fresh-salted certificate and submits
// one InsertOp; the completion callback decides between finishing and
// re-salting. Salts are drawn lazily, one per attempt, so the client RNG
// consumes exactly the same sequence as the settle-era blocking loop.
class PastClient::InsertDriver : public ClientOp,
                                 public std::enable_shared_from_this<PastClient::InsertDriver> {
 public:
  InsertDriver(PastClient& client, std::string name, uint64_t size, Sha1Digest content_hash,
               FileContentRef content, InsertCallback callback)
      : client_(client), name_(std::move(name)), size_(size), content_hash_(content_hash),
        content_(std::move(content)), callback_(std::move(callback)) {}

  void Start() {
    client_.network_.metrics().GetCounter("client.files_attempted").Inc();
    max_attempts_ = client_.network_.config().enable_file_diversion
                        ? client_.network_.config().max_insert_attempts
                        : 1;
    StartAttempt();
  }

  bool done() const override { return done_; }

  void Cancel() override {
    if (done_) {
      return;
    }
    done_ = true;
    if (current_ != nullptr && !current_->done()) {
      current_->Cancel();  // rolls back the half-done attempt, skips OnAttempt
    }
    current_ = nullptr;
  }

 private:
  void StartAttempt() {
    uint64_t salt = client_.rng_.NextU64();
    certificate_ = client_.card_.IssueFileCertificate(name_, salt, size_,
                                                      client_.network_.config().k,
                                                      content_hash_, ++client_.clock_);
    if (!certificate_) {
      result_.quota_exceeded = true;
      Finish();
      return;
    }
    ++result_.attempts;
    auto self = shared_from_this();
    uint64_t epoch = ++attempt_epoch_;
    auto op = client_.network_.engine().StartInsert(
        client_.access_node_, *certificate_, size_, content_,
        [self](const InsertResult& outcome) { self->OnAttempt(outcome); });
    // The attempt may have completed inside StartInsert (always, under
    // InlineTransport) — OnAttempt already ran, and possibly started the
    // next attempt. Storing the op then would recreate the driver ⇄ op
    // shared_ptr cycle (op's callback holds the driver) after OnAttempt
    // broke it: a silent leak of every completed insert. Keep the op only
    // while it is this driver's live, cancellable attempt.
    if (epoch == attempt_epoch_ && !op->done()) {
      current_ = std::move(op);
    }
  }

  void OnAttempt(const InsertResult& outcome) {
    current_ = nullptr;
    result_.last_status = outcome.status;
    if (outcome.status == InsertStatus::kStored) {
      // Verify the store receipts confirm k copies (paper section 2.2).
      uint32_t verified = 0;
      for (const StoreReceipt& receipt : outcome.receipts) {
        if (receipt.Verify()) {
          ++verified;
        }
      }
      result_.stored = verified == outcome.receipts.size() && verified > 0;
      result_.file_id = certificate_->file_id;
      result_.diversions = result_.attempts - 1;
      Finish();
      return;
    }
    // Negative ack: refund the quota debit and re-salt (file diversion).
    client_.card_.RefundInsert(size_, client_.network_.config().k);
    if (result_.attempts < max_attempts_) {
      StartAttempt();
      return;
    }
    result_.diversions = result_.attempts - 1;
    Finish();
  }

  void Finish() {
    obs::MetricsRegistry& metrics = client_.network_.metrics();
    if (result_.stored) {
      metrics.GetCounter("client.files_stored").Inc();
      if (result_.diversions >= 1) {
        metrics.GetCounter("client.files_diverted").Inc();
        metrics.GetHistogram("client.file_diversions_per_file", obs::LinearBuckets(0.0, 1.0, 8))
            .Observe(static_cast<double>(result_.diversions));
      }
    } else {
      metrics.GetCounter("client.files_failed").Inc();
    }
    done_ = true;
    if (callback_) {
      callback_(result_);
    }
  }

  PastClient& client_;
  std::string name_;
  uint64_t size_;
  Sha1Digest content_hash_;
  FileContentRef content_;
  InsertCallback callback_;

  int max_attempts_ = 1;
  uint64_t attempt_epoch_ = 0;  // guards current_ against re-entrant OnAttempt
  std::optional<FileCertificate> certificate_;
  std::shared_ptr<InsertOp> current_;
  ClientInsertResult result_;
  bool done_ = false;
};

// Lookups and reclaims are single-shot: the driver is a thin ClientOp shim
// over the engine op (plus receipt crediting for reclaim).
class PastClient::LookupDriver : public ClientOp {
 public:
  explicit LookupDriver(std::shared_ptr<LookupOp> op) : op_(std::move(op)) {}
  bool done() const override { return op_->done(); }
  void Cancel() override { op_->Cancel(); }

 private:
  std::shared_ptr<LookupOp> op_;
};

class PastClient::ReclaimDriver : public ClientOp {
 public:
  explicit ReclaimDriver(std::shared_ptr<ReclaimOp> op) : op_(std::move(op)) {}
  bool done() const override { return op_->done(); }
  void Cancel() override { op_->Cancel(); }

 private:
  std::shared_ptr<ReclaimOp> op_;
};

PastClient::PastClient(PastNetwork& network, const NodeId& access_node, uint64_t quota_bytes,
                       uint64_t seed)
    : network_(network), access_node_(access_node), rng_(seed), card_(rng_, quota_bytes) {}

OpHandle PastClient::BeginInsert(const std::string& name, uint64_t size,
                                 InsertCallback callback) {
  // Without real content we certify a synthetic content hash derived from
  // the name (the storage experiments track sizes, not bytes).
  auto driver = std::make_shared<InsertDriver>(*this, name, size, Sha1::Hash(name), nullptr,
                                               std::move(callback));
  driver->Start();
  return OpHandle(std::move(driver));
}

OpHandle PastClient::BeginInsertContent(const std::string& name, const std::string& content,
                                        InsertCallback callback) {
  auto body = std::make_shared<const std::string>(content);
  uint64_t size = body->size();
  Sha1Digest content_hash = Sha1::Hash(*body);
  auto driver = std::make_shared<InsertDriver>(*this, name, size, content_hash, std::move(body),
                                               std::move(callback));
  driver->Start();
  return OpHandle(std::move(driver));
}

OpHandle PastClient::BeginLookup(const FileId& file_id, LookupCallback callback) {
  auto op = network_.engine().StartLookup(access_node_, file_id, std::move(callback));
  return OpHandle(std::make_shared<LookupDriver>(std::move(op)));
}

OpHandle PastClient::BeginReclaim(const FileId& file_id, ReclaimCallback callback) {
  ReclaimCertificate certificate = card_.IssueReclaimCertificate(file_id, ++clock_);
  auto op = network_.engine().StartReclaim(
      access_node_, certificate,
      [this, callback = std::move(callback)](const ReclaimResult& result) {
        for (const ReclaimReceipt& receipt : result.receipts) {
          card_.CreditReclaim(receipt);
        }
        if (callback) {
          callback(result);
        }
      });
  return OpHandle(std::make_shared<ReclaimDriver>(std::move(op)));
}

bool PastClient::Poll() { return network_.engine().Poll(); }

void PastClient::Wait(const OpHandle& handle) {
  while (!handle.done()) {
    if (!Poll()) {
      PAST_LOG(kError) << "PastClient::Wait: transport idle with op unfinished";
      return;
    }
  }
}

void PastClient::WaitAll() { network_.engine().WaitAll(); }

ClientInsertResult PastClient::Insert(const std::string& name, uint64_t size) {
  ClientInsertResult result;
  OpHandle handle = BeginInsert(name, size, [&result](const ClientInsertResult& r) { result = r; });
  Wait(handle);
  return result;
}

ClientInsertResult PastClient::InsertContent(const std::string& name,
                                             const std::string& content) {
  ClientInsertResult result;
  OpHandle handle =
      BeginInsertContent(name, content, [&result](const ClientInsertResult& r) { result = r; });
  Wait(handle);
  return result;
}

LookupResult PastClient::Lookup(const FileId& file_id) {
  return network_.Lookup(access_node_, file_id);
}

ReclaimResult PastClient::Reclaim(const FileId& file_id) {
  ReclaimResult result;
  OpHandle handle = BeginReclaim(file_id, [&result](const ReclaimResult& r) { result = r; });
  Wait(handle);
  return result;
}

InsertResult PastClient::InsertCertified(const FileCertificate& certificate, uint64_t size,
                                         FileContentRef content) {
  return network_.Insert(access_node_, certificate, size, std::move(content));
}

ReclaimResult PastClient::ReclaimCertified(const ReclaimCertificate& certificate) {
  return network_.Reclaim(access_node_, certificate);
}

}  // namespace past
