#include "src/crypto/smartcard.h"

namespace past {

Smartcard::Smartcard(Rng& rng, uint64_t quota_bytes)
    : keys_(KeyPair::Generate(rng)), quota_total_(quota_bytes), quota_remaining_(quota_bytes) {}

std::optional<FileCertificate> Smartcard::IssueFileCertificate(
    const std::string& file_name, uint64_t salt, uint64_t file_size, uint32_t k,
    const Sha1Digest& content_hash, uint64_t creation_date) {
  uint64_t cost = file_size * k;
  if (cost > quota_remaining_) {
    return std::nullopt;
  }
  quota_remaining_ -= cost;

  FileCertificate cert;
  cert.file_id = ComputeFileId(file_name, keys_.public_key(), salt);
  cert.content_hash = content_hash;
  cert.replication_factor = k;
  cert.salt = salt;
  cert.creation_date = creation_date;
  cert.owner = keys_.public_key();
  cert.signature = keys_.Sign(cert.SignedPayload());
  return cert;
}

void Smartcard::RefundInsert(uint64_t file_size, uint32_t k) {
  uint64_t refund = file_size * k;
  quota_remaining_ = std::min(quota_total_, quota_remaining_ + refund);
}

ReclaimCertificate Smartcard::IssueReclaimCertificate(const FileId& file_id, uint64_t date) const {
  ReclaimCertificate cert;
  cert.file_id = file_id;
  cert.date = date;
  cert.owner = keys_.public_key();
  cert.signature = keys_.Sign(cert.SignedPayload());
  return cert;
}

bool Smartcard::CreditReclaim(const ReclaimReceipt& receipt) {
  if (!receipt.Verify()) {
    return false;
  }
  quota_remaining_ = std::min(quota_total_, quota_remaining_ + receipt.reclaimed_bytes);
  return true;
}

}  // namespace past
