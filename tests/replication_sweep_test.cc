// Parameterized sweep over the replication factor k: the placement
// invariant, lookup success, and reclaim accounting must hold for every k
// in [1, l/2 + 1] (the paper's constraint on k).
#include <gtest/gtest.h>

#include "src/harness/experiment.h"
#include "src/past/client.h"

namespace past {
namespace {

class ReplicationSweepTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ReplicationSweepTest, PlacementLookupReclaimHoldForEveryK) {
  const uint32_t k = GetParam();
  PastConfig config;
  config.k = k;
  TestDeployment deployment = BuildDeployment(60, 20'000'000, config, 500 + k);
  PastNetwork& network = *deployment.network;
  PastClient client(network, deployment.node_ids[0], 1ull << 45, 600 + k);

  std::vector<FileId> files;
  for (int i = 0; i < 50; ++i) {
    ClientInsertResult r = client.Insert("k" + std::to_string(k) + "-" + std::to_string(i),
                                         1000 + static_cast<uint64_t>(i));
    ASSERT_TRUE(r.stored) << "k=" << k << " i=" << i;
    files.push_back(r.file_id);

    // Exactly k replicas, on exactly the k numerically closest nodes.
    EXPECT_EQ(network.CountLiveReplicas(r.file_id), k);
    for (const NodeId& id : network.overlay().KClosestLive(r.file_id.ToRoutingKey(), k)) {
      const PastNode* node = network.storage_node(id);
      ASSERT_NE(node, nullptr);
      EXPECT_TRUE(node->store().HasReplica(r.file_id));
    }
  }
  EXPECT_EQ(network.CountStorageInvariantViolations(files), 0u);

  // Quota debits scale with k.
  uint64_t used = (1ull << 45) - client.card().quota_remaining();
  uint64_t expected = 0;
  for (int i = 0; i < 50; ++i) {
    expected += (1000 + static_cast<uint64_t>(i)) * k;
  }
  EXPECT_EQ(used, expected);

  // Every file retrievable; reclaim drops exactly k replicas each.
  for (const FileId& f : files) {
    EXPECT_TRUE(client.Lookup(f).found());
  }
  ReclaimResult reclaimed = client.Reclaim(files[0]);
  EXPECT_EQ(reclaimed.replicas_reclaimed, k);
  EXPECT_EQ(network.CountLiveReplicas(files[0]), 0u);
}

TEST_P(ReplicationSweepTest, SurvivesKMinusOneFailures) {
  const uint32_t k = GetParam();
  if (k < 2) {
    GTEST_SKIP() << "needs k >= 2";
  }
  PastConfig config;
  config.k = k;
  config.enable_maintenance = true;
  TestDeployment deployment = BuildDeployment(50, 50'000'000, config, 700 + k);
  PastNetwork& network = *deployment.network;
  PastClient client(network, deployment.node_ids[0], 1ull << 45, 800 + k);
  ClientInsertResult r = client.Insert("survivor", 5000);
  ASSERT_TRUE(r.stored);

  // Fail k-1 replica holders one at a time; maintenance restores each time.
  for (uint32_t round = 0; round + 1 < k; ++round) {
    NodeId victim;
    bool found = false;
    for (const NodeId& id : network.overlay().live_nodes()) {
      const PastNode* node = network.storage_node(id);
      if (node != nullptr && node->store().HasReplica(r.file_id)) {
        victim = id;
        found = true;
        break;
      }
    }
    ASSERT_TRUE(found);
    network.FailStorageNode(victim);
    EXPECT_TRUE(client.Lookup(r.file_id).found()) << "k=" << k << " round=" << round;
  }
  EXPECT_GE(network.CountLiveReplicas(r.file_id), k);
}

INSTANTIATE_TEST_SUITE_P(KValues, ReplicationSweepTest, ::testing::Values(1u, 2u, 3u, 5u, 8u));

}  // namespace
}  // namespace past
