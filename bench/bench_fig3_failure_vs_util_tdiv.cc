// Reproduces Figure 3: cumulative insert-failure ratio versus storage
// utilization for t_div in {0.005, 0.01, 0.05, 0.1} (t_pri = 0.1).
//
// Paper shape: same trade-off as Figure 2 — permissive t_div reaches higher
// utilization before failures climb; restrictive t_div fails earlier but
// keeps the failure curve flat longer at low utilization.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace past;
  BenchStopwatch stopwatch;
  CommandLine cli(argc, argv);
  ExperimentConfig base = BenchConfig(cli);
  PrintHeader("Figure 3: cumulative failure ratio vs utilization, per t_div", base);

  const std::vector<double> tdiv_values = {0.005, 0.01, 0.05, 0.1};
  std::vector<ExperimentConfig> configs;
  for (double t_div : tdiv_values) {
    ExperimentConfig config = base;
    config.t_pri = 0.1;
    config.t_div = t_div;
    configs.push_back(config);
  }
  std::vector<ExperimentResult> results = RunExperimentSuite(configs, BenchSuiteOptions(cli));

  std::printf("t_div,utilization,cumulative_failure_ratio\n");
  for (size_t i = 0; i < results.size(); ++i) {
    for (const CurveSample& s : results[i].curve) {
      std::printf("%.3f,%.4f,%.6f\n", tdiv_values[i], s.utilization,
                  s.cumulative_failure_ratio);
    }
  }
  PrintBenchFooter(stopwatch);
  return 0;
}
