// Result types for the PAST client-visible operations.
#ifndef SRC_PAST_RESULTS_H_
#define SRC_PAST_RESULTS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/file_id.h"
#include "src/common/node_id.h"
#include "src/crypto/certificates.h"

namespace past {

enum class InsertStatus {
  kStored,          // k replicas created, receipts returned
  kNoSpace,         // negative ack: neither the k closest nor their leaf sets
                    // could accommodate the file (triggers file diversion)
  kDuplicateFileId, // fileId collision: the later insert is rejected
  kBadCertificate,  // certificate failed verification at the root
};

struct InsertResult {
  InsertStatus status = InsertStatus::kNoSpace;
  // Replicas actually created (== k on success).
  uint32_t replicas_stored = 0;
  // How many of those were diverted into the leaf set.
  uint32_t replicas_diverted = 0;
  // Pastry hops taken by the insert message.
  int route_hops = 0;
  std::vector<StoreReceipt> receipts;
};

struct LookupResult {
  bool found = false;
  // True when a cached copy (not one of the k replicas) served the request.
  bool served_from_cache = false;
  // True when the serving replica was a diverted one reached via pointer
  // (costs one extra hop, paper section 3.3).
  bool via_diversion_pointer = false;
  uint64_t file_size = 0;
  // Routing hops until the file was found (including the pointer hop).
  int hops = 0;
  // Total proximity distance traversed.
  double distance = 0.0;
  NodeId served_by;
  // The file bytes, when the insert supplied content (null for size-only
  // trace experiments).
  std::shared_ptr<const std::string> content;
};

struct ReclaimResult {
  bool accepted = false;  // certificate verified at the storing nodes
  uint32_t replicas_reclaimed = 0;
  uint64_t bytes_reclaimed = 0;
  std::vector<ReclaimReceipt> receipts;
};

}  // namespace past

#endif  // SRC_PAST_RESULTS_H_
