#include "src/storage/node_store.h"

#include "src/storage/wal.h"

namespace past {

NodeStore::NodeStore(uint64_t capacity_bytes) : capacity_(capacity_bytes) {}

NodeStore::~NodeStore() = default;

bool NodeStore::StoreReplica(const FileId& id, ReplicaKind kind, uint64_t size,
                             FileCertificateRef certificate, FileContentRef content) {
  if (size > free_bytes()) {
    return false;
  }
  auto [entry, inserted] = replicas_.TryEmplace(id, ReplicaEntry{size, kind});
  if (!inserted) {
    return false;  // fileId collision: later insert is rejected (section 2)
  }
  const ReplicaPayload* payload = nullptr;
  if (certificate != nullptr || content != nullptr) {
    payload =
        payloads_.TryEmplace(id, ReplicaPayload{std::move(certificate), std::move(content)}).first;
  }
  used_ += size;
  if (kind == ReplicaKind::kPrimary) {
    ++primary_count_;
  }
  if (journal_ != nullptr) {
    journal_->AppendInsert(id, *entry, payload);
    MaybeCompact();
  }
  return true;
}

bool NodeStore::HasReplica(const FileId& id) const { return replicas_.Contains(id); }

const ReplicaEntry* NodeStore::GetReplica(const FileId& id) const { return replicas_.Find(id); }

FileCertificateRef NodeStore::GetCertificate(const FileId& id) const {
  const ReplicaPayload* payload = payloads_.Find(id);
  return payload == nullptr ? nullptr : payload->certificate;
}

FileContentRef NodeStore::GetContent(const FileId& id) const {
  const ReplicaPayload* payload = payloads_.Find(id);
  return payload == nullptr ? nullptr : payload->content;
}

std::optional<uint64_t> NodeStore::RemoveReplica(const FileId& id) {
  const ReplicaEntry* entry = replicas_.Find(id);
  if (entry == nullptr) {
    return std::nullopt;
  }
  uint64_t size = entry->size;
  used_ -= size;
  if (entry->kind == ReplicaKind::kPrimary) {
    --primary_count_;
  }
  replicas_.Erase(id);
  payloads_.Erase(id);
  if (journal_ != nullptr) {
    journal_->AppendRemove(id);
    MaybeCompact();
  }
  return size;
}

bool NodeStore::SetReplicaKind(const FileId& id, ReplicaKind kind) {
  ReplicaEntry* entry = replicas_.Find(id);
  if (entry == nullptr) {
    return false;
  }
  if (entry->kind != kind) {
    if (kind == ReplicaKind::kPrimary) {
      ++primary_count_;
    } else {
      --primary_count_;
    }
    entry->kind = kind;
    if (journal_ != nullptr) {
      journal_->AppendSetKind(id, kind);
      MaybeCompact();
    }
  }
  return true;
}

bool NodeStore::TestOnlyCorruptDropReplica(const FileId& id) {
  const ReplicaEntry* entry = replicas_.Find(id);
  if (entry == nullptr) {
    return false;
  }
  // Deliberately leaves used_ charging for the vanished entry.
  if (entry->kind == ReplicaKind::kPrimary) {
    --primary_count_;
  }
  replicas_.Erase(id);
  payloads_.Erase(id);
  return true;
}

void NodeStore::InstallPointer(const FileId& id, const NodeId& holder, PointerRole role,
                               uint64_t size) {
  DiversionPointer ptr{holder, role, size};
  pointers_.InsertOrAssign(id, ptr);
  if (journal_ != nullptr) {
    journal_->AppendInstallPointer(id, ptr);
    MaybeCompact();
  }
}

const DiversionPointer* NodeStore::GetPointer(const FileId& id) const {
  return pointers_.Find(id);
}

bool NodeStore::RemovePointer(const FileId& id) {
  if (!pointers_.Erase(id)) {
    return false;
  }
  if (journal_ != nullptr) {
    journal_->AppendRemovePointer(id);
    MaybeCompact();
  }
  return true;
}

// --- durability ---

void NodeStore::EnableDurability(StorageEnv& env, std::string dir, const DurableOptions& opts) {
  journal_ = NodeStoreJournal::Create(env, std::move(dir), opts);
}

bool NodeStore::RecoverDurable(StorageEnv& env, std::string dir, const DurableOptions& opts) {
  journal_ = NodeStoreJournal::Recover(env, std::move(dir), opts, *this);
  return !journal_->failed();
}

bool NodeStore::Commit() { return journal_ == nullptr || journal_->Commit(); }

void NodeStore::ResetForRecovery() {
  replicas_.Clear();
  payloads_.Clear();
  pointers_.Clear();
  used_ = 0;
  primary_count_ = 0;
}

void NodeStore::MaybeCompact() {
  if (journal_->ShouldCompact()) {
    journal_->Compact(*this);
  }
}

}  // namespace past
