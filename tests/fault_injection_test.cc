// Fault-injection tests over the message fabric (SimTransport): dropped
// protocol messages time out and roll back cleanly, duplicated deliveries
// are idempotent, and a partitioned node is presumed failed after the
// paper's unresponsiveness period T and its replicas are re-created.
#include <gtest/gtest.h>

#include <vector>

#include "src/harness/experiment.h"
#include "src/past/client.h"
#include "src/pastry/keepalive.h"
#include "src/sim/event_queue.h"

namespace past {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void Build(size_t num_nodes, bool maintenance) {
    PastConfig config;
    config.k = 3;
    config.enable_maintenance = maintenance;
    deployment_ = BuildDeployment(num_nodes, /*capacity_per_node=*/50'000'000, config,
                                  /*seed=*/77);
    SimTransport::Options options;
    options.latency = LatencyModel::Lan();
    options.seed = 78;
    sim_ = &network().UseSimTransport(queue_, options);
  }

  PastNetwork& network() { return *deployment_.network; }
  NodeId AnyNode() { return deployment_.node_ids.front(); }

  TestDeployment deployment_;
  EventQueue queue_;
  SimTransport* sim_ = nullptr;
};

TEST_F(FaultInjectionTest, DroppedStoreReplicaTimesOutAndRollsBack) {
  Build(60, /*maintenance=*/false);
  PastClient client(network(), AnyNode(), 1ull << 40, 79);
  auto cert = client.card().IssueFileCertificate("doomed.bin", 1, 10'000, 3,
                                                 Sha1::Hash("doomed"), 1);
  ASSERT_TRUE(cert.has_value());

  sim_->DropNext(MessageType::kStoreReplica, 1);
  InsertResult result = network().Insert(AnyNode(), *cert, 10'000);
  EXPECT_EQ(result.status, InsertStatus::kTimeout);
  EXPECT_EQ(result.replicas_stored, 0u);
  EXPECT_TRUE(result.receipts.empty());

  // Rollback left no partial state anywhere: no replicas, no pointers, and
  // the gauges agree.
  EXPECT_EQ(network().CountLiveReplicas(cert->file_id), 0u);
  EXPECT_EQ(network().CountReplicas().replicas, 0u);
  EXPECT_EQ(network().CountersSnapshot().replicas_stored_total, 0u);
  EXPECT_EQ(network().total_stored(), 0u);
  EXPECT_EQ(sim_->stats().dropped(), 1u);
}

TEST_F(FaultInjectionTest, ClientRetriesAfterDropAndSucceeds) {
  Build(60, /*maintenance=*/false);
  PastClient client(network(), AnyNode(), 1ull << 40, 79);

  // The first attempt loses one replica-store message mid-insert; the
  // client re-salts and the retry goes through untouched.
  sim_->DropNext(MessageType::kStoreReplica, 1);
  ClientInsertResult r = client.Insert("retry.bin", 20'000);
  ASSERT_TRUE(r.stored);
  EXPECT_EQ(r.attempts, 2);
  EXPECT_EQ(r.diversions, 1);
  EXPECT_EQ(r.last_status, InsertStatus::kStored);

  // Exactly k replicas network-wide: the failed attempt contributed nothing.
  EXPECT_EQ(network().CountLiveReplicas(r.file_id), 3u);
  EXPECT_EQ(network().CountReplicas().replicas, 3u);
  PastCounters counters = network().CountersSnapshot();
  EXPECT_EQ(counters.insert_attempts, 2u);
  EXPECT_EQ(counters.insert_attempts_failed, 1u);
  EXPECT_EQ(network().CountStorageInvariantViolations({r.file_id}), 0u);
}

TEST_F(FaultInjectionTest, DuplicatedDeliveriesAreIdempotent) {
  Build(60, /*maintenance=*/false);
  // Every message is delivered twice. Receiver-side dedup must keep the
  // protocol exactly-once: k replicas, consistent gauges, one receipt set.
  SimTransport::Options options = sim_->options();
  options.faults.duplicate_probability = 1.0;
  sim_ = &network().UseSimTransport(queue_, options);

  PastClient client(network(), AnyNode(), 1ull << 40, 80);
  ClientInsertResult r = client.Insert("twice.bin", 15'000);
  ASSERT_TRUE(r.stored);
  EXPECT_EQ(r.attempts, 1);
  EXPECT_EQ(network().CountLiveReplicas(r.file_id), 3u);
  EXPECT_EQ(network().CountReplicas().replicas, 3u);
  EXPECT_EQ(network().CountersSnapshot().replicas_stored_total, 3u);
  EXPECT_GT(sim_->stats().duplicated(), 0u);

  LookupResult looked_up = network().Lookup(AnyNode(), r.file_id);
  EXPECT_TRUE(looked_up.found());

  // Reclaim under duplication drains everything exactly once too.
  ReclaimResult reclaimed = client.Reclaim(r.file_id);
  EXPECT_EQ(reclaimed.status, ReclaimStatus::kReclaimed);
  EXPECT_EQ(reclaimed.replicas_reclaimed, 3u);
  EXPECT_EQ(network().CountReplicas().replicas, 0u);
  EXPECT_EQ(network().total_stored(), 0u);
}

TEST_F(FaultInjectionTest, LookupTimesOutOnDroppedFetchReply) {
  Build(60, /*maintenance=*/false);
  PastClient client(network(), AnyNode(), 1ull << 40, 81);
  ClientInsertResult r = client.Insert("fetch.bin", 12'000);
  ASSERT_TRUE(r.stored);

  sim_->DropNext(MessageType::kFetchReply, 1);
  LookupResult lost = network().Lookup(AnyNode(), r.file_id);
  EXPECT_EQ(lost.status, LookupStatus::kTimeout);
  EXPECT_FALSE(lost.found());
  EXPECT_EQ(lost.file_size, 0u);

  LookupResult retried = network().Lookup(AnyNode(), r.file_id);
  EXPECT_EQ(retried.status, LookupStatus::kFound);
  EXPECT_EQ(retried.file_size, 12'000u);
}

TEST_F(FaultInjectionTest, PartitionedNodeIsPresumedFailedAndRepaired) {
  Build(40, /*maintenance=*/true);
  PastClient client(network(), AnyNode(), 1ull << 40, 82);
  std::vector<FileId> files;
  for (int i = 0; i < 10; ++i) {
    ClientInsertResult r = client.Insert("part-" + std::to_string(i) + ".bin", 30'000);
    ASSERT_TRUE(r.stored);
    files.push_back(r.file_id);
  }

  // Keep-alive over the fabric: probe every period, presume a member failed
  // once it has been unresponsive for T = 3 periods.
  constexpr SimTime kPeriod = 1'000;
  constexpr SimTime kTimeout = 3 * kPeriod;
  KeepAliveDriver driver(queue_, network().overlay(), kPeriod);
  driver.UseTransport(&network().transport(), kTimeout);

  // Partition a node that holds a replica of the first file. It stays alive
  // (and keeps probing), but nothing reaches it and none of its probes or
  // acks get out.
  NodeId victim;
  bool found_victim = false;
  for (const NodeId& id : network().overlay().KClosestLive(files[0].ToRoutingKey(), 3)) {
    const PastNode* pn = network().storage_node(id);
    if (pn != nullptr && pn->store().HasReplica(files[0])) {
      victim = id;
      found_victim = true;
      break;
    }
  }
  ASSERT_TRUE(found_victim);
  sim_->Partition(victim);
  ASSERT_TRUE(network().overlay().IsAlive(victim));

  // Run the virtual clock past period + T: detection no later than that.
  queue_.RunUntil(queue_.now() + kPeriod + kTimeout + 2 * kPeriod);

  EXPECT_FALSE(network().overlay().IsAlive(victim));
  EXPECT_GE(driver.failures_detected(), 1u);
  // Replica maintenance restored the storage invariant for every file —
  // repair traffic flows over the same faulty fabric, but only the victim
  // is cut off.
  EXPECT_EQ(network().CountStorageInvariantViolations(files), 0u);
  EXPECT_EQ(network().CountLiveReplicas(files[0]), 3u);
  driver.Stop();
}

}  // namespace
}  // namespace past
