// PAST certificates (paper section 2.2).
//
// Every insert produces a file certificate signed by the owner; every storing
// node returns a signed store receipt; reclaim operations carry a reclaim
// certificate and yield reclaim receipts. These are the objects that let
// storage nodes verify authenticity and let clients verify that k replicas
// were actually created.
#ifndef SRC_CRYPTO_CERTIFICATES_H_
#define SRC_CRYPTO_CERTIFICATES_H_

#include <cstdint>
#include <string>

#include "src/common/file_id.h"
#include "src/common/node_id.h"
#include "src/crypto/keys.h"
#include "src/crypto/sha1.h"

namespace past {

// Computes a fileId: SHA-1 of the file's textual name, the owner's public
// key, and a salt (paper section 2.2). Re-salting during file diversion
// changes only `salt`.
FileId ComputeFileId(const std::string& name, const PublicKey& owner, uint64_t salt);

// Signed by the owner at insert time. Travels with the file and is stored by
// every replica holder.
struct FileCertificate {
  FileId file_id;
  Sha1Digest content_hash = {};
  uint32_t replication_factor = 0;  // k
  uint64_t salt = 0;
  uint64_t creation_date = 0;
  PublicKey owner;
  Signature signature;

  // Canonical byte string covered by the signature.
  std::string SignedPayload() const;

  // Checks the owner's signature over the payload.
  bool VerifySignature() const;

  // Checks that `content` matches the certified content hash.
  bool VerifyContent(std::string_view content) const;
};

// Issued by each node that accepted (or diverted) a replica; the client
// verifies k receipts before declaring the insert successful.
struct StoreReceipt {
  FileId file_id;
  NodeId storing_node;
  PublicKey node_key;
  Signature signature;

  std::string SignedPayload() const;
  bool Verify() const;
};

// Authorizes reclaiming the storage of a file; signed by the owner.
struct ReclaimCertificate {
  FileId file_id;
  uint64_t date = 0;
  PublicKey owner;
  Signature signature;

  std::string SignedPayload() const;
  bool VerifySignature() const;
};

// Returned by each node that dropped its replica; the client's smartcard
// verifies these before crediting the storage quota.
struct ReclaimReceipt {
  FileId file_id;
  NodeId storing_node;
  uint64_t reclaimed_bytes = 0;
  PublicKey node_key;
  Signature signature;

  std::string SignedPayload() const;
  bool Verify() const;
};

}  // namespace past

#endif  // SRC_CRYPTO_CERTIFICATES_H_
