// Latency model for client-visible operation times.
//
// The paper reports fetch distance in routing hops because wall-clock delay
// depends on per-hop network latency, but it quotes one absolute number
// (section 5.2): retrieving a 1 KB file from a node one Pastry hop away on a
// LAN takes ~25 ms in the Java prototype. This model converts a route
// (hops, proximity distance, payload size) into milliseconds so benches can
// report latency distributions under configurable network assumptions.
#ifndef SRC_NET_LATENCY_MODEL_H_
#define SRC_NET_LATENCY_MODEL_H_

#include <cstdint>

namespace past {

struct LatencyModel {
  // Fixed cost per hop: marshalling, smartcard checks, request handling.
  // Default calibrated to the paper's prototype measurement (1 hop + 1 KB on
  // a LAN ≈ 25 ms).
  double per_hop_overhead_ms = 24.0;

  // Wide-area propagation: the proximity metric is scaled so that crossing
  // the whole emulated space costs this much one-way delay. On a LAN the
  // proximity distances are ~0.
  double propagation_ms_per_unit_distance = 0.0;

  // Payload transfer rate (10 Mbit/s ~ 1.25 MB/s by default).
  double bandwidth_bytes_per_ms = 1250.0;

  // End-to-end latency of fetching `payload_bytes` over a route of
  // `hops` / `distance`, with the payload traveling only the final leg back
  // (the storing node replies directly to the client).
  double FetchLatencyMs(int hops, double distance, uint64_t payload_bytes) const {
    double request = static_cast<double>(hops) * per_hop_overhead_ms +
                     distance * propagation_ms_per_unit_distance;
    double transfer = static_cast<double>(payload_bytes) / bandwidth_bytes_per_ms;
    return request + transfer;
  }

  // A LAN-like configuration matching the paper's prototype measurement.
  static LatencyModel Lan() { return LatencyModel{24.0, 0.0, 1250.0}; }

  // A wide-area configuration: ~50 ms to cross the emulated space, 1 MB/s.
  static LatencyModel Wan() { return LatencyModel{5.0, 100.0, 1000.0}; }
};

}  // namespace past

#endif  // SRC_NET_LATENCY_MODEL_H_
