// Placement-policy x cooperative-cache ablation under adversarial workloads.
//
// Sweeps every (placement, coop-cache, workload) cell over the generators in
// src/workload/adversarial.h and reports, per cell: insert failure ratio,
// global cache hit ratio, modeled p50/p95 fetch latency, and the coop tier's
// probe/hit counters. The final summary lines compare coop-on vs coop-off
// hit ratios per workload — the flash-crowd row is where brokered hits pay.
//
// Flags (besides the common --nodes/--files/--refs/--seed/--jobs):
//   --placement kclosest|residual|random|all   (default all)
//   --coop-cache 0|1|all                        (default all)
//   --workload flash|diurnal|drift|regional|all (default all)
//   --smoke                                     tiny scale for CI
#include <cstring>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace past;
  BenchStopwatch stopwatch;
  CommandLine cli(argc, argv);
  ExperimentConfig base = BenchConfig(cli);
  if (cli.Has("--smoke")) {
    if (!cli.Has("--nodes")) {
      base.num_nodes = 60;
    }
    base.catalog_size = static_cast<uint32_t>(cli.GetInt("--files", 4000));
    base.total_references = static_cast<uint64_t>(cli.GetInt("--refs", 40000));
  } else {
    if (!cli.Has("--nodes")) {
      base.num_nodes = 120;
    }
    base.catalog_size = static_cast<uint32_t>(cli.GetInt("--files", 15000));
    base.total_references = static_cast<uint64_t>(cli.GetInt("--refs", 150000));
  }
  base.cache_mode = CacheMode::kGreedyDualSize;
  base.cache_insertion_cost_cap = cli.GetDouble("--insertion-cap", 0.5);
  base.adversarial = true;
  PrintHeader("Policy ablation: placement x coop-cache x adversarial workload", base);

  std::vector<PlacementKind> placements;
  {
    std::string flag = cli.GetString("--placement", "all");
    if (flag == "all") {
      placements = {PlacementKind::kKClosestDiversion, PlacementKind::kResidualPerformance,
                    PlacementKind::kRandomizedCacheSize};
    } else {
      std::optional<PlacementKind> kind = PlacementKindFromName(flag.c_str());
      if (!kind.has_value()) {
        std::fprintf(stderr, "error: unknown --placement %s\n", flag.c_str());
        return 2;
      }
      placements = {*kind};
    }
  }
  std::vector<bool> coop_modes;
  {
    std::string flag = cli.GetString("--coop-cache", "all");
    if (flag == "all") {
      coop_modes = {false, true};
    } else {
      coop_modes = {flag != "0"};
    }
  }
  std::vector<AdversarialKind> workloads;
  {
    std::string flag = cli.GetString("--workload", "all");
    if (flag == "all") {
      workloads = {AdversarialKind::kFlashCrowd, AdversarialKind::kDiurnal,
                   AdversarialKind::kZipfDrift, AdversarialKind::kRegionalFailure};
    } else {
      AdversarialKind kind;
      if (!AdversarialKindFromName(flag.c_str(), &kind)) {
        std::fprintf(stderr, "error: unknown --workload %s\n", flag.c_str());
        return 2;
      }
      workloads = {kind};
    }
  }

  // Coop iterates innermost (off before on) so (a) each coop pair shares a
  // workload/placement prefix for the summary diff and (b) with
  // --metrics-json the surviving dump comes from a coop-enabled cell, which
  // is the schema the validator exercises.
  struct Cell {
    AdversarialKind workload;
    PlacementKind placement;
    bool coop;
  };
  std::vector<Cell> cells;
  std::vector<ExperimentConfig> configs;
  for (AdversarialKind w : workloads) {
    for (PlacementKind p : placements) {
      for (bool coop : coop_modes) {
        ExperimentConfig config = base;
        config.adversarial_kind = w;
        config.placement = p;
        config.residual_shed_load =
            static_cast<uint64_t>(cli.GetInt("--residual-shed-load", 64));
        config.coop_cache = coop;
        cells.push_back({w, p, coop});
        configs.push_back(config);
      }
    }
  }

  std::vector<ExperimentResult> results = RunExperimentSuite(configs, BenchSuiteOptions(cli));

  std::printf(
      "workload,placement,coop,failure_ratio,hit_ratio,p50_ms,p95_ms,coop_probes,coop_hits\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ExperimentResult& r = results[i];
    std::printf("%s,%s,%d,%.4f,%.4f,%.2f,%.2f,%llu,%llu\n",
                AdversarialKindName(cells[i].workload), PlacementKindName(cells[i].placement),
                cells[i].coop ? 1 : 0, r.failure_ratio, r.global_cache_hit_rate,
                r.lookup_latency_p50_ms, r.lookup_latency_p95_ms,
                static_cast<unsigned long long>(
                    r.metrics.CounterValue("past.cache.coop.probes")),
                static_cast<unsigned long long>(
                    r.metrics.CounterValue("past.cache.coop.hits")));
  }

  // Coop-on vs coop-off deltas, per (workload, placement) pair.
  if (coop_modes.size() == 2) {
    for (size_t i = 0; i + 1 < results.size(); i += 2) {
      double off = results[i].global_cache_hit_rate;
      double on = results[i + 1].global_cache_hit_rate;
      std::printf("# %s/%s: coop hit ratio %.4f vs local-only %.4f (%+.4f)\n",
                  AdversarialKindName(cells[i].workload),
                  PlacementKindName(cells[i].placement), on, off, on - off);
    }
  }
  PrintBenchFooter(stopwatch);
  return 0;
}
