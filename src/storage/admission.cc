#include "src/storage/admission.h"

#include <cmath>
#include <numeric>

namespace past {
namespace {

AdmissionResult Tally(obs::MetricsRegistry* metrics, AdmissionResult result) {
  if (metrics != nullptr) {
    switch (result.decision) {
      case AdmissionDecision::kAccept:
        metrics->GetCounter("storage.admission.accepted").Inc();
        break;
      case AdmissionDecision::kReject:
        metrics->GetCounter("storage.admission.rejected").Inc();
        break;
      case AdmissionDecision::kSplit:
        metrics->GetCounter("storage.admission.split").Inc();
        metrics->GetCounter("storage.admission.split_nodes")
            .Inc(static_cast<uint64_t>(result.split_count));
        break;
    }
  }
  return result;
}

}  // namespace

AdmissionResult AdmissionControl::Evaluate(
    uint64_t advertised_capacity, const std::vector<uint64_t>& leaf_set_capacities) const {
  if (leaf_set_capacities.empty()) {
    return Tally(metrics, {AdmissionDecision::kAccept, 1});
  }
  double sum = std::accumulate(leaf_set_capacities.begin(), leaf_set_capacities.end(), 0.0);
  double average = sum / static_cast<double>(leaf_set_capacities.size());
  if (average <= 0.0) {
    return Tally(metrics, {AdmissionDecision::kAccept, 1});
  }
  double ratio = static_cast<double>(advertised_capacity) / average;
  if (ratio < min_ratio) {
    return Tally(metrics, {AdmissionDecision::kReject, 1});
  }
  if (ratio > max_ratio) {
    // Join under enough nodeIds that each logical node is within bounds.
    int count = static_cast<int>(std::ceil(ratio / max_ratio));
    return Tally(metrics, {AdmissionDecision::kSplit, count});
  }
  return Tally(metrics, {AdmissionDecision::kAccept, 1});
}

}  // namespace past
