// StorageEnv semantics: PosixEnv round-trips real files; FaultEnv models a
// deterministic disk whose crash images (durable prefix + in-order torn
// tail), lying fsyncs, and per-directory power loss are the substrate of the
// crash-matrix tests in node_store_recovery_test.cc.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/storage/storage_env.h"

namespace past {
namespace {

std::string ReadOr(StorageEnv& env, const std::string& dir, const std::string& name,
                   const std::string& fallback = "<missing>") {
  std::string out;
  return env.Read(dir, name, &out) ? out : fallback;
}

TEST(PosixEnvTest, RoundTripsAppendFsyncListRenameRemove) {
  PosixEnv env(::testing::TempDir() + "/posix_env_test");
  EXPECT_TRUE(env.Append("n1", "a.log", "hello "));
  EXPECT_TRUE(env.Append("n1", "a.log", "world"));
  EXPECT_TRUE(env.Fsync("n1", "a.log"));
  EXPECT_EQ(ReadOr(env, "n1", "a.log"), "hello world");

  EXPECT_TRUE(env.Append("n1", "b.log", "x"));
  EXPECT_EQ(env.List("n1"), (std::vector<std::string>{"a.log", "b.log"}));
  EXPECT_TRUE(env.List("absent").empty());

  // Rename replaces the destination atomically.
  EXPECT_TRUE(env.Rename("n1", "b.log", "a.log"));
  EXPECT_EQ(ReadOr(env, "n1", "a.log"), "x");
  EXPECT_EQ(env.List("n1"), (std::vector<std::string>{"a.log"}));

  EXPECT_TRUE(env.Remove("n1", "a.log"));
  EXPECT_FALSE(env.Remove("n1", "a.log"));
  EXPECT_EQ(ReadOr(env, "n1", "a.log"), "<missing>");
}

TEST(FaultEnvTest, BasicFileOperations) {
  FaultEnv env;
  EXPECT_TRUE(env.Append("d", "f", "abc"));
  EXPECT_TRUE(env.Append("d", "f", "def"));
  EXPECT_EQ(ReadOr(env, "d", "f"), "abcdef");
  EXPECT_TRUE(env.Append("d", "g", "zz"));
  EXPECT_EQ(env.List("d"), (std::vector<std::string>{"f", "g"}));
  EXPECT_TRUE(env.Rename("d", "g", "f"));
  EXPECT_EQ(ReadOr(env, "d", "f"), "zz");
  EXPECT_TRUE(env.Remove("d", "f"));
  EXPECT_FALSE(env.Remove("d", "f"));
  EXPECT_FALSE(env.Rename("d", "f", "h"));
}

TEST(FaultEnvTest, CrashKeepsOnlyDurablePrefix) {
  FaultEnv env;
  env.Append("d", "f", "durable|");
  ASSERT_TRUE(env.Fsync("d", "f"));
  env.Append("d", "f", "lost");
  env.CrashDir("d", 0);
  env.ReviveDir("d");
  EXPECT_EQ(ReadOr(env, "d", "f"), "durable|");
}

TEST(FaultEnvTest, TornTailExposesPrefixOfUnsyncedBytes) {
  FaultEnv env;
  env.Append("d", "f", "base");
  ASSERT_TRUE(env.Fsync("d", "f"));
  env.Append("d", "f", "tail");
  env.CrashDir("d", 2);  // in-order flush: first 2 unsynced bytes survive
  env.ReviveDir("d");
  EXPECT_EQ(ReadOr(env, "d", "f"), "baseta");
}

TEST(FaultEnvTest, TornTailOnlyAppliesToLastWrittenFile) {
  FaultEnv env;
  env.Append("d", "old", "unsynced-old");
  env.Append("d", "new", "unsynced-new");
  env.CrashDir("d", 99);
  env.ReviveDir("d");
  // Only the most recent Append's file keeps its (entire, torn>len) tail.
  EXPECT_EQ(ReadOr(env, "d", "old"), "");
  EXPECT_EQ(ReadOr(env, "d", "new"), "unsynced-new");
}

TEST(FaultEnvTest, DeadDirectoryFailsEverythingUntilRevive) {
  FaultEnv env;
  env.Append("d", "f", "x");
  env.Fsync("d", "f");
  env.CrashDir("d", 0);
  EXPECT_FALSE(env.Append("d", "f", "y"));
  std::string out;
  EXPECT_FALSE(env.Read("d", "f", &out));
  EXPECT_TRUE(env.List("d").empty());
  // Other directories are unaffected.
  EXPECT_TRUE(env.Append("e", "f", "fine"));
  env.ReviveDir("d");
  EXPECT_EQ(ReadOr(env, "d", "f"), "x");
}

TEST(FaultEnvTest, GlobalCrashAtSyscallBoundaryIsDeterministic) {
  // Dry run: count the syscalls of a fixed script.
  FaultEnv dry;
  dry.Append("d", "f", "one");   // syscall 1
  dry.Fsync("d", "f");           // syscall 2
  dry.Append("d", "f", "two");   // syscall 3
  dry.Fsync("d", "f");           // syscall 4
  ASSERT_EQ(dry.syscalls(), 4u);

  // Crash exactly at the second fsync: "two" was appended but never durable.
  FaultEnv env;
  env.set_crash_at(4);
  EXPECT_TRUE(env.Append("d", "f", "one"));
  EXPECT_TRUE(env.Fsync("d", "f"));
  EXPECT_TRUE(env.Append("d", "f", "two"));
  EXPECT_FALSE(env.Fsync("d", "f"));
  EXPECT_TRUE(env.crashed());
  // Everything fails until Restart, and no syscalls are counted while down.
  uint64_t at_crash = env.syscalls();
  EXPECT_FALSE(env.Append("d", "f", "three"));
  EXPECT_EQ(env.syscalls(), at_crash);
  env.Restart();
  EXPECT_EQ(ReadOr(env, "d", "f"), "one");
}

TEST(FaultEnvTest, CrashDuringAppendTearsMidWrite) {
  FaultEnv env;
  env.set_crash_at(1);
  env.set_torn_tail_bytes(3);
  // The write was in flight: its bytes join the unsynced tail before the
  // crash image is cut, so the tear lands mid-record.
  EXPECT_FALSE(env.Append("d", "f", "record"));
  env.Restart();
  EXPECT_EQ(ReadOr(env, "d", "f"), "rec");
}

TEST(FaultEnvTest, DroppedFsyncLies) {
  FaultEnv env;
  env.Append("d", "f", "acked");      // syscall 1
  env.set_drop_fsync_at(2);
  EXPECT_TRUE(env.Fsync("d", "f"));   // syscall 2: reports success, does nothing
  env.CrashDir("d", 0);
  env.ReviveDir("d");
  EXPECT_EQ(ReadOr(env, "d", "f"), "");  // the "durable" bytes are gone
}

TEST(FaultEnvTest, StickyFsyncFailureDoesNotCrash) {
  FaultEnv env;
  env.Append("d", "f", "x");
  env.FailFsyncs("d", true);
  EXPECT_FALSE(env.Fsync("d", "f"));
  EXPECT_FALSE(env.crashed());
  EXPECT_EQ(ReadOr(env, "d", "f"), "x");  // data still readable, just not durable
  env.FailFsyncs("d", false);
  EXPECT_TRUE(env.Fsync("d", "f"));
  env.CrashDir("d", 0);
  env.ReviveDir("d");
  EXPECT_EQ(ReadOr(env, "d", "f"), "x");
}

TEST(FaultEnvTest, RenameCarriesDurabilityAndLastWrite) {
  FaultEnv env;
  env.Append("d", "tmp", "snapshot");
  env.Fsync("d", "tmp");
  env.Append("d", "tmp", "-tail");
  ASSERT_TRUE(env.Rename("d", "tmp", "final"));
  env.CrashDir("d", 1);
  env.ReviveDir("d");
  // The durable prefix and the torn-tail eligibility moved with the file.
  EXPECT_EQ(ReadOr(env, "d", "final"), "snapshot-");
  EXPECT_EQ(ReadOr(env, "d", "tmp"), "<missing>");
}

}  // namespace
}  // namespace past
