#include "src/common/thread_pool.h"

#include <algorithm>
#include <stdexcept>

namespace past {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

uint64_t ThreadPool::submitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return submitted_;
}

void ThreadPool::Enqueue(std::function<void()> wrapped) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool::Submit after shutdown began");
    }
    queue_.push_back(std::move(wrapped));
    ++submitted_;
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ and fully drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // packaged_task captures any exception into the task's future.
    task();
  }
}

}  // namespace past
