#include "src/workload/trace_io.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace past {
namespace {

constexpr char kMagic[8] = {'P', 'A', 'S', 'T', 'T', 'R', 'C', '1'};

template <typename T>
void WritePod(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(*value));
  return in.good() || (in.eof() && in.gcount() == sizeof(*value));
}

}  // namespace

bool WriteTrace(const Trace& trace, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  WritePod<uint32_t>(out, trace.num_clients);
  WritePod<uint32_t>(out, trace.num_clusters);
  WritePod<uint64_t>(out, trace.file_sizes.size());
  for (uint64_t size : trace.file_sizes) {
    WritePod<uint64_t>(out, size);
  }
  WritePod<uint64_t>(out, trace.events.size());
  for (const TraceEvent& e : trace.events) {
    WritePod<uint8_t>(out, static_cast<uint8_t>(e.op));
    WritePod<uint32_t>(out, e.file_index);
    WritePod<uint32_t>(out, e.client);
  }
  return out.good();
}

bool WriteTraceFile(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  return out.is_open() && WriteTrace(trace, out);
}

std::optional<Trace> ReadTrace(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return std::nullopt;
  }
  Trace trace;
  uint64_t file_count = 0;
  uint64_t event_count = 0;
  if (!ReadPod(in, &trace.num_clients) || !ReadPod(in, &trace.num_clusters) ||
      !ReadPod(in, &file_count)) {
    return std::nullopt;
  }
  trace.file_sizes.resize(file_count);
  for (uint64_t i = 0; i < file_count; ++i) {
    if (!ReadPod(in, &trace.file_sizes[i])) {
      return std::nullopt;
    }
  }
  if (!ReadPod(in, &event_count)) {
    return std::nullopt;
  }
  trace.events.reserve(event_count);
  for (uint64_t i = 0; i < event_count; ++i) {
    uint8_t op;
    TraceEvent e{};
    if (!ReadPod(in, &op) || !ReadPod(in, &e.file_index) || !ReadPod(in, &e.client)) {
      return std::nullopt;
    }
    if (op > static_cast<uint8_t>(TraceOp::kLookup) || e.file_index >= file_count ||
        (trace.num_clients != 0 && e.client >= trace.num_clients)) {
      return std::nullopt;
    }
    e.op = static_cast<TraceOp>(op);
    trace.events.push_back(e);
  }
  return trace;
}

std::optional<Trace> ReadTraceFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return std::nullopt;
  }
  return ReadTrace(in);
}

}  // namespace past
