// PlacementPolicy unit tests: the k-closest default must reproduce the
// paper's decision rules exactly (first-max free space, one draw for
// kRandom), and the alternative policies' scoring/shedding semantics are
// pinned here so bench_policies ablations stay meaningful across refactors.
#include <gtest/gtest.h>

#include <vector>

#include "src/storage/policies.h"

namespace past {
namespace {

// Deterministic entropy that replays a scripted list of raw draws (reduced
// mod bound) and counts how many draws a policy consumed.
class ScriptedEntropy : public PlacementEntropy {
 public:
  explicit ScriptedEntropy(std::vector<uint64_t> draws = {}) : draws_(std::move(draws)) {}

  uint64_t NextBelow(uint64_t bound) override {
    ++calls_;
    if (draws_.empty()) {
      return 0;
    }
    uint64_t raw = draws_[next_ % draws_.size()];
    ++next_;
    return raw % bound;
  }

  size_t calls() const { return calls_; }

 private:
  std::vector<uint64_t> draws_;
  size_t next_ = 0;
  size_t calls_ = 0;
};

PlacementCandidate Candidate(uint64_t free_bytes, uint64_t capacity = 0, uint64_t load = 0,
                             bool accepts = true) {
  PlacementCandidate c;
  c.free_bytes = free_bytes;
  c.capacity_bytes = capacity == 0 ? free_bytes : capacity;
  c.recent_load = load;
  c.accepts_diverted = accepts;
  return c;
}

std::unique_ptr<PlacementPolicy> Make(PlacementKind kind, PlacementOptions options = {}) {
  return MakePlacementPolicy(kind, options);
}

TEST(PlacementKindTest, NamesRoundTrip) {
  for (PlacementKind kind :
       {PlacementKind::kKClosestDiversion, PlacementKind::kResidualPerformance,
        PlacementKind::kRandomizedCacheSize}) {
    std::optional<PlacementKind> parsed = PlacementKindFromName(PlacementKindName(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(PlacementKindFromName("bogus").has_value());
  EXPECT_FALSE(PlacementKindFromName(nullptr).has_value());
}

TEST(KClosestDiversionTest, PrimaryFollowsThresholdVerdictWithoutDraws) {
  auto policy = Make(PlacementKind::kKClosestDiversion);
  ScriptedEntropy entropy;
  EXPECT_TRUE(policy->ShouldStorePrimary(Candidate(1000), true, 100, entropy));
  EXPECT_FALSE(policy->ShouldStorePrimary(Candidate(1000), false, 100, entropy));
  EXPECT_EQ(entropy.calls(), 0u);
}

TEST(KClosestDiversionTest, MaxFreeSpaceKeepsFirstMaximum) {
  auto policy = Make(PlacementKind::kKClosestDiversion);
  ScriptedEntropy entropy;
  std::vector<PlacementCandidate> eligible = {Candidate(5), Candidate(9), Candidate(9),
                                              Candidate(3)};
  std::optional<size_t> pick = policy->ChooseDiversionTarget(eligible, 100, entropy);
  ASSERT_TRUE(pick.has_value());
  // std::max_element semantics: ties resolve to the earliest candidate, so
  // replays are independent of how the tie arose.
  EXPECT_EQ(*pick, 1u);
  EXPECT_EQ(entropy.calls(), 0u);
}

TEST(KClosestDiversionTest, RandomSelectionConsumesExactlyOneDraw) {
  PlacementOptions options;
  options.diversion_selection = DiversionSelection::kRandom;
  auto policy = Make(PlacementKind::kKClosestDiversion, options);
  ScriptedEntropy entropy({2});
  std::vector<PlacementCandidate> eligible = {Candidate(1), Candidate(2), Candidate(3),
                                              Candidate(4)};
  std::optional<size_t> pick = policy->ChooseDiversionTarget(eligible, 100, entropy);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 2u);
  EXPECT_EQ(entropy.calls(), 1u);
}

TEST(KClosestDiversionTest, FirstFitScansInCallerOrder) {
  PlacementOptions options;
  options.diversion_selection = DiversionSelection::kFirstFit;
  auto policy = Make(PlacementKind::kKClosestDiversion, options);
  ScriptedEntropy entropy;
  std::vector<PlacementCandidate> eligible = {
      Candidate(1, 0, 0, false), Candidate(2, 0, 0, false), Candidate(3, 0, 0, true),
      Candidate(4, 0, 0, true)};
  EXPECT_EQ(policy->ChooseDiversionTarget(eligible, 100, entropy), std::optional<size_t>(2));
}

TEST(ResidualPerformanceTest, HotPrimaryShedsIntoLeafSet) {
  PlacementOptions options;
  options.residual_shed_load = 10;
  auto policy = Make(PlacementKind::kResidualPerformance, options);
  ScriptedEntropy entropy;
  EXPECT_TRUE(policy->ShouldStorePrimary(Candidate(1000, 0, 9), true, 100, entropy));
  EXPECT_FALSE(policy->ShouldStorePrimary(Candidate(1000, 0, 10), true, 100, entropy));
  // Shedding only tightens the threshold verdict, never overrides a reject.
  EXPECT_FALSE(policy->ShouldStorePrimary(Candidate(1000, 0, 0), false, 100, entropy));
}

TEST(ResidualPerformanceTest, ZeroShedLoadDisablesShedding) {
  auto policy = Make(PlacementKind::kResidualPerformance);
  ScriptedEntropy entropy;
  EXPECT_TRUE(policy->ShouldStorePrimary(Candidate(1000, 0, 1'000'000), true, 100, entropy));
}

TEST(ResidualPerformanceTest, DiversionRanksFreeBytesPerUnitLoad) {
  auto policy = Make(PlacementKind::kResidualPerformance);
  ScriptedEntropy entropy;
  // A: 1000 free / (1+9) load = 100. B: 500 free / (1+0) = 500. B wins even
  // though A has more raw space — load discounts it.
  std::vector<PlacementCandidate> eligible = {Candidate(1000, 0, 9), Candidate(500, 0, 0)};
  EXPECT_EQ(policy->ChooseDiversionTarget(eligible, 100, entropy), std::optional<size_t>(1));
  // Equal scores keep the earliest candidate (replay order stability).
  std::vector<PlacementCandidate> tied = {Candidate(400, 0, 0), Candidate(400, 0, 0)};
  EXPECT_EQ(policy->ChooseDiversionTarget(tied, 100, entropy), std::optional<size_t>(0));
  EXPECT_EQ(entropy.calls(), 0u);
}

TEST(RandomizedCacheSizeTest, DrawsProportionalToCapacity) {
  auto policy = Make(PlacementKind::kRandomizedCacheSize);
  std::vector<PlacementCandidate> eligible = {Candidate(0, 10), Candidate(0, 30),
                                              Candidate(0, 60)};
  // Capacity prefix sums are [10, 40, 100]; a draw lands in the first bucket
  // whose prefix exceeds it.
  struct Case {
    uint64_t draw;
    size_t expect;
  };
  for (const Case& c : std::vector<Case>{{0, 0}, {9, 0}, {10, 1}, {39, 1}, {40, 2}, {99, 2}}) {
    ScriptedEntropy entropy({c.draw});
    std::optional<size_t> pick = policy->ChooseDiversionTarget(eligible, 100, entropy);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(*pick, c.expect) << "draw " << c.draw;
    EXPECT_EQ(entropy.calls(), 1u);
  }
}

TEST(RandomizedCacheSizeTest, ZeroTotalCapacityFallsBackToUniform) {
  auto policy = Make(PlacementKind::kRandomizedCacheSize);
  std::vector<PlacementCandidate> eligible = {Candidate(0, 0), Candidate(0, 0),
                                              Candidate(0, 0)};
  ScriptedEntropy entropy({1});
  EXPECT_EQ(policy->ChooseDiversionTarget(eligible, 100, entropy), std::optional<size_t>(1));
  EXPECT_EQ(entropy.calls(), 1u);
}

TEST(PlacementPolicyTest, FactoryReportsNames) {
  EXPECT_STREQ(Make(PlacementKind::kKClosestDiversion)->name(), "kclosest");
  EXPECT_STREQ(Make(PlacementKind::kResidualPerformance)->name(), "residual");
  EXPECT_STREQ(Make(PlacementKind::kRandomizedCacheSize)->name(), "random");
}

}  // namespace
}  // namespace past
