#include "src/pastry/neighborhood_set.h"

namespace past {

NeighborhoodSet::NeighborhoodSet(const NodeId& owner, int capacity, const NodeDirectory* dir)
    : owner_(owner), dir_(dir), capacity_(capacity) {
  if (capacity_ > kInlineCapacity) {
    spill_ = std::make_unique<std::vector<uint32_t>>(static_cast<size_t>(capacity_),
                                                     kInvalidNodeIndex);
  }
}

bool NeighborhoodSet::Consider(const NodeId& id) {
  if (id == owner_ || Contains(id)) {
    return false;
  }
  // Without a proximity metric every node is equidistant (insertion order).
  double d = DistanceTo(id);
  uint32_t* a = data();
  int lo = 0;
  int hi = count_;
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (DistanceTo(dir_->resolve(dir_->ctx, a[mid])) < d) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  int pos = lo;
  if (count_ >= capacity_ && pos == count_) {
    return false;
  }
  uint32_t interned = dir_->intern(dir_->ctx, id);
  if (count_ == capacity_) {
    // Insert at pos and evict the farthest member in one shift.
    for (int i = count_ - 1; i > pos; --i) {
      a[i] = a[i - 1];
    }
    a[pos] = interned;
  } else {
    for (int i = count_; i > pos; --i) {
      a[i] = a[i - 1];
    }
    a[pos] = interned;
    ++count_;
  }
  return true;
}

bool NeighborhoodSet::Remove(const NodeId& id) {
  uint32_t* a = data();
  for (int i = 0; i < count_; ++i) {
    if (dir_->resolve(dir_->ctx, a[i]) == id) {
      for (int j = i; j + 1 < count_; ++j) {
        a[j] = a[j + 1];
      }
      --count_;
      return true;
    }
  }
  return false;
}

bool NeighborhoodSet::Contains(const NodeId& id) const {
  const uint32_t* a = data();
  for (int i = 0; i < count_; ++i) {
    if (dir_->resolve(dir_->ctx, a[i]) == id) {
      return true;
    }
  }
  return false;
}

std::vector<NodeId> NeighborhoodSet::members() const {
  std::vector<NodeId> out;
  out.reserve(static_cast<size_t>(count_));
  for (int i = 0; i < count_; ++i) {
    out.push_back(dir_->resolve(dir_->ctx, data()[i]));
  }
  return out;
}

}  // namespace past
