// Accounting for messages and routing hops.
//
// PAST's evaluation reports lookup cost as the number of Pastry routing hops
// and argues about network traffic via message counts; this collector is
// shared by the Pastry network and the PAST layer.
#ifndef SRC_NET_TRANSPORT_STATS_H_
#define SRC_NET_TRANSPORT_STATS_H_

#include <cstdint>
#include <string>

#include "src/obs/metrics.h"

namespace past {

class TransportStats {
 public:
  void RecordHop(double proximity_distance) {
    ++hops_;
    total_distance_ += proximity_distance;
  }
  void RecordMessage(uint64_t bytes) {
    ++messages_;
    bytes_sent_ += bytes;
  }
  void RecordRpc() { ++rpcs_; }

  void Reset() { *this = TransportStats(); }

  uint64_t hops() const { return hops_; }
  uint64_t messages() const { return messages_; }
  uint64_t rpcs() const { return rpcs_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  double total_distance() const { return total_distance_; }

  // Registers the current tallies in `snapshot` under `prefix` (e.g. "net."
  // → "net.hops"). Gauge semantics (Set, not Inc) keep the export idempotent
  // so it can run on every snapshot.
  void ExportTo(obs::MetricsSnapshot& snapshot, const std::string& prefix) const {
    snapshot.gauges[prefix + "hops"] = static_cast<double>(hops_);
    snapshot.gauges[prefix + "messages"] = static_cast<double>(messages_);
    snapshot.gauges[prefix + "rpcs"] = static_cast<double>(rpcs_);
    snapshot.gauges[prefix + "bytes_sent"] = static_cast<double>(bytes_sent_);
    snapshot.gauges[prefix + "distance_total"] = total_distance_;
  }

 private:
  uint64_t hops_ = 0;
  uint64_t messages_ = 0;
  uint64_t rpcs_ = 0;
  uint64_t bytes_sent_ = 0;
  double total_distance_ = 0.0;
};

}  // namespace past

#endif  // SRC_NET_TRANSPORT_STATS_H_
