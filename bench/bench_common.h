// Shared setup for the experiment bench binaries.
//
// Every bench runs with scaled-down defaults so `for b in build/bench/*; do
// $b; done` completes in minutes on one core; pass --paper-scale for the
// paper's 2250 nodes and full trace sizes, or override individual knobs
// (--nodes, --files, --refs, --seed, --csv).
#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "src/harness/cli.h"
#include "src/harness/experiment.h"
#include "src/harness/suite.h"
#include "src/harness/table_printer.h"

namespace past {

// Validates `config`, printing every problem; exits with status 2 when
// invalid so a bad flag combination fails loudly instead of mid-run.
inline void ValidateOrDie(const ExperimentConfig& config) {
  std::vector<std::string> errors = config.Validate();
  if (errors.empty()) {
    return;
  }
  for (const std::string& error : errors) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
  }
  std::exit(2);
}

inline ExperimentConfig BenchConfig(const CommandLine& cli) {
  ExperimentConfig config;
  if (cli.Has("--paper-scale")) {
    config.num_nodes = 2250;
    config.catalog_size = 1863055;
  } else {
    // catalog 0 = auto: num_nodes * 800 files, preserving the paper's
    // files-per-node ratio that governs packing at saturation.
    config.num_nodes = static_cast<size_t>(cli.GetInt("--nodes", 300));
    config.catalog_size = static_cast<uint32_t>(cli.GetInt("--files", 0));
  }
  config.seed = static_cast<uint64_t>(cli.GetInt("--seed", 42));
  config.t_pri = cli.GetDouble("--tpri", 0.1);
  config.t_div = cli.GetDouble("--tdiv", 0.05);
  config.demand_factor = cli.GetDouble("--demand", 1.53);
  // Observability: dump the aggregated metrics registry / per-op JSONL trace
  // at end of run. With several RunExperiment calls per bench, each run
  // overwrites the file, so the dump reflects the final configuration.
  config.metrics_json_path = cli.GetString("--metrics-json", "");
  config.trace_jsonl_path = cli.GetString("--trace-jsonl", "");
  ValidateOrDie(config);
  return config;
}

inline void PrintHeader(const char* what, const ExperimentConfig& config) {
  std::printf("# %s\n", what);
  std::printf("# nodes=%zu files=%u k=%u b=%d l=%d seed=%llu\n", config.num_nodes,
              config.catalog_size, config.k, config.b, config.leaf_set_size,
              static_cast<unsigned long long>(config.seed));
}

// Worker threads for multi-configuration benches (--jobs N). Results are
// bit-identical for any N: RunExperimentSuite derives each configuration's
// seed from its index, never from shared RNG state.
inline SuiteOptions BenchSuiteOptions(const CommandLine& cli) {
  SuiteOptions options;
  options.jobs = static_cast<int>(cli.GetInt("--jobs", 1));
  return options;
}

// Wall-clock from program start, for the standard bench footer.
class BenchStopwatch {
 public:
  BenchStopwatch() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Peak resident set size of this process (Linux reports ru_maxrss in KiB).
inline double PeakRssMb() {
  struct rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

// Every bench binary ends with this line so serial-vs-parallel wins (and
// memory cost) are visible without parsing any JSON output.
inline void PrintBenchFooter(const BenchStopwatch& stopwatch) {
  std::printf("# wall-time %.2f s, peak RSS %.1f MB\n", stopwatch.Seconds(), PeakRssMb());
}

}  // namespace past

#endif  // BENCH_BENCH_COMMON_H_
