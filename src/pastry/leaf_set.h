// Pastry leaf set: the l/2 numerically closest larger and l/2 numerically
// closest smaller nodeIds relative to the owning node (paper section 2.1).
//
// The leaf set is the backbone of both routing correctness (final-hop
// delivery) and PAST's replica placement (the k nodes closest to a fileId
// are, by the constraint k <= l/2 + 1, always inside the root's leaf set).
// When fewer than l nodes exist on either side the two sides may overlap;
// consumers that need "distinct nodes" use All().
#ifndef SRC_PASTRY_LEAF_SET_H_
#define SRC_PASTRY_LEAF_SET_H_

#include <vector>

#include "src/common/node_id.h"

namespace past {

class LeafSet {
 public:
  LeafSet(const NodeId& owner, int capacity_per_side);

  const NodeId& owner() const { return owner_; }
  int capacity_per_side() const { return capacity_per_side_; }

  // Considers `id` for membership; returns true if it was inserted (possibly
  // evicting the farthest member on its side).
  bool Insert(const NodeId& id);

  // Removes `id` from both sides. Returns true if it was present.
  bool Remove(const NodeId& id);

  bool Contains(const NodeId& id) const;

  // Members on the clockwise (numerically larger, wrapping) side, ordered by
  // increasing ring distance from the owner.
  const std::vector<NodeId>& larger() const { return larger_; }
  // Members on the counterclockwise side, ordered likewise.
  const std::vector<NodeId>& smaller() const { return smaller_; }

  // Distinct members of both sides (owner excluded).
  std::vector<NodeId> All() const;

  // True if `key` falls inside the id range covered by the leaf set
  // (between the farthest smaller and farthest larger member, owner
  // inclusive). When true, the numerically closest node to `key` is a member
  // (or the owner) and routing can finish in one hop.
  bool Covers(const NodeId& key) const;

  // The member (or owner) numerically closest to `key`.
  NodeId ClosestTo(const NodeId& key) const;

  size_t size() const;
  bool full() const;

 private:
  // Inserts into one side vector kept sorted by directed distance.
  bool InsertSide(std::vector<NodeId>& side, const NodeId& id, bool clockwise);

  NodeId owner_;
  int capacity_per_side_;
  std::vector<NodeId> larger_;
  std::vector<NodeId> smaller_;
};

}  // namespace past

#endif  // SRC_PASTRY_LEAF_SET_H_
