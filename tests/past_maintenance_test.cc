// Replica maintenance under churn (paper section 3.5): the k-closest
// invariant must be restored after joins and failures, and replicas must be
// re-created when holders die.
#include <gtest/gtest.h>

#include "src/harness/experiment.h"
#include "src/past/client.h"

namespace past {
namespace {

class PastMaintenanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PastConfig config;
    config.k = 5;
    config.enable_maintenance = true;
    deployment_ = BuildDeployment(60, 50'000'000, config, 130);
    client_ = std::make_unique<PastClient>(*deployment_.network, deployment_.node_ids[0],
                                           1ull << 50, 131);
    for (int i = 0; i < 100; ++i) {
      ClientInsertResult r = client_->Insert("m-" + std::to_string(i), 4000 + i);
      ASSERT_TRUE(r.stored);
      files_.push_back(r.file_id);
    }
  }

  PastNetwork& network() { return *deployment_.network; }

  TestDeployment deployment_;
  std::unique_ptr<PastClient> client_;
  std::vector<FileId> files_;
};

TEST_F(PastMaintenanceTest, InvariantHoldsAfterSingleFailure) {
  network().FailStorageNode(deployment_.node_ids[10]);
  EXPECT_EQ(network().CountStorageInvariantViolations(files_), 0u);
  for (const FileId& f : files_) {
    EXPECT_GE(network().CountLiveReplicas(f), 5u) << f.ToHex();
  }
  EXPECT_EQ(network().CountersSnapshot().files_lost, 0u);
}

TEST_F(PastMaintenanceTest, InvariantHoldsAfterJoin) {
  for (int i = 0; i < 10; ++i) {
    network().AddStorageNode(50'000'000);
  }
  EXPECT_EQ(network().CountStorageInvariantViolations(files_), 0u);
}

TEST_F(PastMaintenanceTest, InvariantHoldsUnderMixedChurn) {
  Rng rng(132);
  for (int round = 0; round < 25; ++round) {
    if (rng.NextBool(0.5)) {
      network().AddStorageNode(50'000'000);
    } else {
      std::vector<NodeId> live = network().overlay().live_nodes();
      if (live.size() > 30) {
        network().FailStorageNode(live[rng.NextBelow(live.size())]);
      }
    }
  }
  EXPECT_EQ(network().CountStorageInvariantViolations(files_), 0u);
  EXPECT_EQ(network().CountersSnapshot().files_lost, 0u);
  // All files still retrievable.
  for (const FileId& f : files_) {
    EXPECT_TRUE(client_->Lookup(f).found()) << f.ToHex();
  }
}

TEST_F(PastMaintenanceTest, ReplicasRecreatedAfterHolderFails) {
  // Kill every current holder of one file, one at a time; maintenance should
  // re-create replicas on surviving nodes each time.
  FileId target = files_[0];
  for (int round = 0; round < 3; ++round) {
    NodeId victim;
    bool found = false;
    for (const NodeId& id : network().overlay().live_nodes()) {
      const PastNode* node = network().storage_node(id);
      if (node != nullptr && node->store().HasReplica(target)) {
        victim = id;
        found = true;
        break;
      }
    }
    ASSERT_TRUE(found);
    network().FailStorageNode(victim);
    EXPECT_GE(network().CountLiveReplicas(target), 5u) << "round " << round;
  }
  EXPECT_GT(network().CountersSnapshot().replicas_recreated, 0u);
  EXPECT_TRUE(client_->Lookup(target).found());
}

TEST_F(PastMaintenanceTest, FileSurvivesFailuresUpToKMinusOneHolders) {
  FileId target = files_[1];
  // Fail k-1 = 4 holders in one burst (detected one by one).
  int killed = 0;
  for (const NodeId& id : network().overlay().live_nodes()) {
    if (killed == 4) {
      break;
    }
    const PastNode* node = network().storage_node(id);
    if (node != nullptr && node->store().HasReplica(target)) {
      network().FailStorageNode(id);
      ++killed;
    }
  }
  EXPECT_EQ(killed, 4);
  EXPECT_TRUE(client_->Lookup(target).found());
  EXPECT_GE(network().CountLiveReplicas(target), 5u);
}

TEST(PastMaintenanceSilentTest, KeepAliveDetectionTriggersRepair) {
  PastConfig config;
  config.k = 3;
  config.enable_maintenance = true;
  TestDeployment deployment = BuildDeployment(40, 50'000'000, config, 133);
  PastNetwork& network = *deployment.network;
  PastClient client(network, deployment.node_ids[0], 1ull << 50, 134);
  std::vector<FileId> files;
  for (int i = 0; i < 40; ++i) {
    ClientInsertResult r = client.Insert("s-" + std::to_string(i), 2000);
    ASSERT_TRUE(r.stored);
    files.push_back(r.file_id);
  }
  // Silent failure: PAST notices only once Pastry's keep-alive detects it.
  network.overlay().FailNodeSilently(deployment.node_ids[5]);
  network.overlay().DetectAndRepair();
  EXPECT_EQ(network.CountStorageInvariantViolations(files), 0u);
  for (const FileId& f : files) {
    EXPECT_GE(network.CountLiveReplicas(f), 3u);
  }
}

TEST(PastMaintenanceDisabledTest, NoRepairWhenDisabled) {
  PastConfig config;
  config.k = 3;
  config.enable_maintenance = false;
  TestDeployment deployment = BuildDeployment(30, 50'000'000, config, 135);
  PastNetwork& network = *deployment.network;
  PastClient client(network, deployment.node_ids[0], 1ull << 50, 136);
  ClientInsertResult r = client.Insert("unrepaired", 2000);
  ASSERT_TRUE(r.stored);
  // Fail one holder: with maintenance off the replica count drops.
  for (const NodeId& id : network.overlay().live_nodes()) {
    const PastNode* node = network.storage_node(id);
    if (node != nullptr && node->store().HasReplica(r.file_id)) {
      network.FailStorageNode(id);
      break;
    }
  }
  EXPECT_EQ(network.CountLiveReplicas(r.file_id), 2u);
}

}  // namespace
}  // namespace past
