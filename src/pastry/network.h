// The Pastry overlay network: node registry, the join / failure / recovery
// protocols, and message routing with hop accounting.
//
// Mirrors the paper's evaluation methodology: all nodes live in one process
// and communicate by direct invocation, while proximity comes from the
// emulated topology. Ground-truth oracles (the sorted ring of live ids) are
// exposed for invariant checking in tests, never used on routing paths.
//
// Node state is flat: every id ever joined is interned to a dense NodeIndex
// into parallel arrays (node slot, alive bit, id), membership checks are
// open-addressing probes over contiguous memory, and the live ring is a
// sorted array (SortedRing) instead of a std::map. Indices are stable for
// the lifetime of the network — failure and recovery flip the alive bit but
// never reassign the index — which is what lets the sharded scale engine
// partition nodes by index range.
//
// The network is also the NodeDirectory for all of its nodes: interning,
// liveness, and proximity are C function pointers over the flat arrays, so a
// PastryNode carries no per-node std::function closures. Nodes themselves
// are carved from a network-owned Arena, and so are their routing rows and
// the FlatTable backing stores — at a million nodes this keeps allocator
// metadata and per-allocation padding from dominating RSS.
#ifndef SRC_PASTRY_NETWORK_H_
#define SRC_PASTRY_NETWORK_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/common/arena.h"
#include "src/common/flat_table.h"
#include "src/common/node_id.h"
#include "src/common/rng.h"
#include "src/net/topology.h"
#include "src/net/transport_stats.h"
#include "src/pastry/config.h"
#include "src/pastry/directory.h"
#include "src/pastry/node.h"
#include "src/pastry/ring.h"

namespace past {

// Notifications about overlay membership changes; PAST subscribes to drive
// replica maintenance (paper section 3.5).
class MembershipObserver {
 public:
  virtual ~MembershipObserver() = default;
  virtual void OnNodeJoined(const NodeId& id) = 0;
  virtual void OnNodeFailed(const NodeId& id) = 0;
};

struct RouteResult {
  // Visited nodes, origin first. Empty only if the origin is unknown/dead.
  std::vector<NodeId> path;
  // True if the stop predicate fired before reaching the numerically
  // closest node (e.g. a cached copy satisfied a lookup en route).
  bool stopped_early = false;
  // False if a malicious node on the path accepted the message but silently
  // dropped it (paper section 2.3). The client must retry; randomized
  // routing makes the retry likely to avoid the bad node.
  bool delivered = true;
  // Sum of proximity distances over all hops taken.
  double distance = 0.0;

  int hops() const { return path.empty() ? 0 : static_cast<int>(path.size()) - 1; }
  NodeId destination() const { return path.empty() ? NodeId() : path.back(); }
};

// A dead reference observed during routing with Forget deferred: `observer`
// saw `dead` in its leaf set or routing table while forwarding. The scale
// engine applies the corresponding Forget calls at its epoch barrier, in a
// canonical order, so parallel route phases stay read-only.
struct DeferredForget {
  NodeId observer;
  NodeId dead;
};

// Redirections for a single Route call; all fields default to the network's
// own state. The sharded scale engine points them at per-shard collectors so
// parallel routing touches no shared mutable state.
struct RouteOptions {
  TransportStats* stats = nullptr;  // hop/message accounting sink
  Rng* rng = nullptr;               // randomized-routing source
  // Collect (observer, dead) pairs instead of calling Forget inline.
  std::vector<DeferredForget>* deferred_forgets = nullptr;
};

class PastryNetwork {
 public:
  // Stop predicate evaluated at every node a message visits (including the
  // origin); returning true terminates routing at that node.
  using StopFn = std::function<bool(const NodeId&)>;

  // Dense per-node index; stable from first join for the network's lifetime.
  using NodeIndex = uint32_t;
  static constexpr NodeIndex kInvalidIndex = static_cast<NodeIndex>(-1);

  PastryNetwork(const PastryConfig& config, uint64_t seed);
  ~PastryNetwork();

  // The directory trampolines carry `this`; the network must stay put.
  PastryNetwork(const PastryNetwork&) = delete;
  PastryNetwork& operator=(const PastryNetwork&) = delete;

  const PastryConfig& config() const { return config_; }
  Topology& topology() { return topology_; }
  const Topology& topology() const { return topology_; }
  TransportStats& stats() { return stats_; }
  const TransportStats& stats() const { return stats_; }
  Rng& rng() { return rng_; }
  // The shared directory backing every node's routing state.
  const NodeDirectory* directory() const { return &dir_; }

  // --- membership ---

  // Creates a node with a fresh quasi-random nodeId at a uniform location and
  // joins it through the proximally nearest existing node. Returns its id.
  NodeId CreateNode();

  // Same, but placed near `center` (geographic clustering).
  NodeId CreateNodeNear(const Coordinate& center, double spread);

  // Joins a node with a caller-chosen id at `location`. Returns false if the
  // id is already present.
  bool Join(const NodeId& id, const Coordinate& location);

  // Builds an initial network of `n` uniformly placed nodes.
  void BuildInitialNetwork(size_t n);

  // --- batched joins (bulk network construction) ---
  //
  // Between BeginJoinBatch() and EndJoinBatch(), the "newcomer announces
  // itself to every node it references" step of Join is deferred: each
  // announcement is queued per target and applied (in announcement order)
  // the first time that target's state is next read. Every observable read
  // goes through node()/node_at(), which flush first, so the state any
  // consumer — including the joins that follow in the same batch — ever
  // sees is bit-identical to the eager schedule. What changes is locality:
  // a target touched by many joins applies its Learns in one pass over hot
  // state instead of being dragged into cache once per join. FlushJoinBatch
  // drains everything pending (index order) without leaving batch mode;
  // EndJoinBatch drains and deactivates. Nesting is not supported.
  void BeginJoinBatch();
  void FlushJoinBatch();
  void EndJoinBatch();

  // Fails a node and immediately runs failure detection and leaf-set repair
  // on the affected nodes (the common case in tests and experiments).
  void FailNode(const NodeId& id);

  // Marks a node dead without telling anyone. Failure is discovered lazily
  // during routing or by the next DetectAndRepair() keep-alive round.
  void FailNodeSilently(const NodeId& id);

  // One keep-alive round: every live node checks its leaf set for dead
  // members and repairs (paper: neighbors exchange keep-alives; after period
  // T a silent node is presumed failed). Returns number of failures detected.
  size_t DetectAndRepair();

  // A previously failed node recovers and rejoins with the same id.
  bool RecoverNode(const NodeId& id);

  // One round of lazy routing-table repair (paper section 2.1: a failed
  // entry at row r is replaced by asking other nodes from row r for a node
  // with the required prefix). Each live node offers its row-mates' entries
  // and its leaf set to every node it references. Returns the number of
  // routing-table slots that were newly filled.
  size_t RepairRoutingTables();

  // --- routing ---

  // Routes a message from `from` toward `key`, stopping early where `stop`
  // fires. Accounts hops and proximity distance in stats().
  RouteResult Route(const NodeId& from, const NodeId& key, const StopFn& stop = nullptr);

  // Same, with per-call redirection of stats/rng/forget handling (see
  // RouteOptions). With `deferred_forgets` set the call leaves all node
  // state untouched.
  RouteResult Route(const NodeId& from, const NodeId& key, const StopFn& stop,
                    const RouteOptions& options);

  // --- adversarial model (paper section 2.3) ---

  // Marks a node as malicious: it accepts messages routed to it but does not
  // forward them. Routing state still lists it (it responds to probes), so
  // deterministic routes through it fail repeatedly; randomized routing
  // (PastryConfig::route_randomization) lets retries evade it.
  void SetMalicious(const NodeId& id, bool malicious);
  bool IsMalicious(const NodeId& id) const;

  // --- queries ---

  bool IsAlive(const NodeId& id) const {
    const NodeIndex* idx = index_.Find(id);
    return idx != nullptr && alive_bits_[*idx] != 0;
  }
  PastryNode* node(const NodeId& id) {
    const NodeIndex* found = index_.Find(id);
    if (found == nullptr) {
      return nullptr;
    }
    // Copy before flushing: the flushed Learns re-intern known ids, and an
    // intern may rehash index_, invalidating `found`.
    NodeIndex idx = *found;
    if (join_batch_active_) {
      FlushPending(idx);
    }
    return slots_[idx];
  }
  const PastryNode* node(const NodeId& id) const {
    // Lazily applying queued announcements is logically const: the flushed
    // state is exactly what the eager schedule would already contain.
    return const_cast<PastryNetwork*>(this)->node(id);
  }
  size_t live_count() const { return ring_.size(); }
  std::vector<NodeId> live_nodes() const { return ring_.ids(); }

  // --- dense-index access (scale engine, invariant sweeps) ---

  // Total interned ids (live + dead); indices are [0, node_count()).
  size_t node_count() const { return slots_.size(); }
  NodeIndex IndexOf(const NodeId& id) const {
    const NodeIndex* idx = index_.Find(id);
    return idx == nullptr ? kInvalidIndex : *idx;
  }
  PastryNode* node_at(NodeIndex index) {
    if (join_batch_active_) {
      FlushPending(index);
    }
    return slots_[index];
  }
  const PastryNode* node_at(NodeIndex index) const {
    return const_cast<PastryNetwork*>(this)->node_at(index);
  }
  bool alive_at(NodeIndex index) const { return alive_bits_[index] != 0; }
  const SortedRing& ring() const { return ring_; }
  // Arena stats for memory accounting (scale dumps).
  const Arena& arena() const { return arena_; }

  // Ground-truth oracle: the k live nodes numerically closest to `key`.
  std::vector<NodeId> KClosestLive(const NodeId& key, size_t k) const {
    return ring_.KClosest(key, k);
  }

  // Ground-truth oracle: the live node numerically closest to `key`.
  NodeId ClosestLive(const NodeId& key) const;

  // --- observers / invariants ---

  void AddObserver(MembershipObserver* observer) { observers_.push_back(observer); }
  void RemoveObserver(MembershipObserver* observer);

  // Verifies every live node's leaf set against the ground-truth ring.
  // Returns the number of discrepancies (0 means the invariant holds).
  size_t CountLeafSetViolations() const;

 private:
  NodeId RandomNodeId();
  void AnnounceNewNode(PastryNode& node);
  void RepairAfterFailure(const NodeId& failed);
  void NotifyJoined(const NodeId& id);
  void NotifyFailed(const NodeId& id);

  // Interns `id`: returns its stable dense index, appending an empty slot
  // (no node, dead) on first sight.
  NodeIndex Intern(const NodeId& id);
  // Interns `id` and constructs a live arena-backed node in its slot,
  // destroying any stale previous incarnation.
  PastryNode* InstallNode(const NodeId& id);

  // Applies (and clears) the queued join announcements for one node.
  void FlushPending(NodeIndex index);

  // NodeDirectory trampolines; ctx is the PastryNetwork.
  static uint32_t DirIntern(void* ctx, const NodeId& id);
  static const NodeId& DirResolve(void* ctx, uint32_t index);
  static bool DirAlive(void* ctx, uint32_t index);
  static double DirDistance(void* ctx, const NodeId& a, const NodeId& b);

  PastryConfig config_;
  Rng rng_;
  Topology topology_;
  TransportStats stats_;
  // Backing store for nodes, routing rows, and (via set_arena) FlatTables.
  // Declared before the slot array so it outlives nothing that references
  // it; actual node destruction happens explicitly in ~PastryNetwork.
  Arena arena_;
  // Interned node table: id -> dense index into the parallel arrays below.
  FlatTable<NodeId, NodeIndex, NodeIdHash> index_;
  std::vector<PastryNode*> slots_;     // by NodeIndex; arena-owned
  std::vector<uint8_t> alive_bits_;    // by NodeIndex
  std::vector<NodeId> ids_by_index_;   // by NodeIndex; resolve() storage
  NodeDirectory dir_;
  // Sparse: most networks have no malicious nodes; the hot path only checks
  // per hop once any id has ever been marked (mirrors the old map's
  // emptiness hoist).
  FlatTable<NodeId, uint8_t, NodeIdHash> malicious_;
  SortedRing ring_;  // live nodes ordered by id (oracle + seeds)
  std::vector<MembershipObserver*> observers_;

  // Deferred join announcements: a per-node FIFO chain threaded through one
  // flat pool (head/tail per NodeIndex, kInvalidIndex when empty). Only
  // populated while a join batch is active.
  struct PendingLearn {
    uint32_t next;
    NodeId newcomer;
  };
  bool join_batch_active_ = false;
  std::vector<PendingLearn> pending_pool_;
  std::vector<uint32_t> pending_head_;
  std::vector<uint32_t> pending_tail_;
};

}  // namespace past

#endif  // SRC_PASTRY_NETWORK_H_
