// pastctl — a scriptable command-line driver for a simulated PAST network.
//
// Reads commands from stdin (one per line) and prints results, making the
// whole public API usable from shell scripts:
//
//   build 100 50000000           # network: 100 nodes x 50 MB, default seed
//   client alice 10000000        # client with a 10 MB quota
//   put alice notes.txt hello world
//   insert alice big.bin 250000  # size-only insert
//   lookup alice notes.txt
//   reclaim alice big.bin
//   join 5 50000000              # 5 more storage nodes
//   fail 3                       # fail 3 random storage nodes
//   stats
//   quit
#include <cstdio>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "src/common/rng.h"
#include "src/past/client.h"
#include "src/past/past_network.h"

namespace {

using namespace past;

struct Session {
  std::unique_ptr<PastNetwork> network;
  std::unique_ptr<Rng> rng;
  std::vector<NodeId> nodes;
  std::map<std::string, std::unique_ptr<PastClient>> clients;
  std::map<std::string, FileId> files;  // "client/filename" -> fileId
  uint64_t seed = 1;
};

std::string FileKey(const std::string& client, const std::string& name) {
  return client + "/" + name;
}

bool RequireNetwork(const Session& session) {
  if (session.network == nullptr) {
    std::printf("error: no network (use: build <nodes> <capacity> [seed])\n");
    return false;
  }
  return true;
}

void HandleLine(Session& session, const std::string& line) {
  std::istringstream in(line);
  std::string command;
  if (!(in >> command) || command.empty() || command[0] == '#') {
    return;
  }

  if (command == "build") {
    size_t nodes = 0;
    uint64_t capacity = 0;
    in >> nodes >> capacity;
    if (in >> session.seed) {
    }
    if (nodes == 0 || capacity == 0) {
      std::printf("usage: build <nodes> <capacity_bytes> [seed]\n");
      return;
    }
    PastConfig config;
    config.cache_mode = CacheMode::kGreedyDualSize;
    PastryConfig pastry_config;
    session.network = std::make_unique<PastNetwork>(config, pastry_config, session.seed);
    session.rng = std::make_unique<Rng>(session.seed ^ 0x5bd1e995);
    session.nodes.clear();
    session.clients.clear();
    session.files.clear();
    for (size_t i = 0; i < nodes; ++i) {
      session.nodes.push_back(session.network->AddStorageNode(capacity));
    }
    std::printf("ok: %zu nodes, %.1f MB total capacity\n", nodes,
                static_cast<double>(session.network->total_capacity()) / 1e6);
  } else if (command == "client") {
    std::string name;
    uint64_t quota = 0;
    in >> name >> quota;
    if (!RequireNetwork(session) || name.empty() || quota == 0) {
      return;
    }
    NodeId access = session.nodes[session.rng->NextBelow(session.nodes.size())];
    session.clients[name] = std::make_unique<PastClient>(*session.network, access, quota,
                                                         session.rng->NextU64());
    std::printf("ok: client %s at node %s, quota %llu\n", name.c_str(),
                access.ToHex().substr(0, 8).c_str(), static_cast<unsigned long long>(quota));
  } else if (command == "insert" || command == "put") {
    std::string client_name, file_name;
    in >> client_name >> file_name;
    if (!RequireNetwork(session)) {
      return;
    }
    auto it = session.clients.find(client_name);
    if (it == session.clients.end()) {
      std::printf("error: unknown client '%s'\n", client_name.c_str());
      return;
    }
    ClientInsertResult result;
    if (command == "insert") {
      uint64_t size = 0;
      in >> size;
      result = it->second->Insert(file_name, size);
    } else {
      std::string content;
      std::getline(in, content);
      if (!content.empty() && content[0] == ' ') {
        content.erase(0, 1);
      }
      result = it->second->InsertContent(file_name, content);
    }
    if (result.stored) {
      session.files[FileKey(client_name, file_name)] = result.file_id;
      std::printf("ok: %s -> %s (attempts %d, diversions %d)\n", file_name.c_str(),
                  result.file_id.ToHex().c_str(), result.attempts, result.diversions);
    } else if (result.quota_exceeded) {
      std::printf("fail: quota exceeded\n");
    } else {
      std::printf("fail: no space after %d attempts\n", result.attempts);
    }
  } else if (command == "lookup") {
    std::string client_name, file_name;
    in >> client_name >> file_name;
    if (!RequireNetwork(session)) {
      return;
    }
    auto it = session.clients.find(client_name);
    if (it == session.clients.end()) {
      std::printf("error: unknown client '%s'\n", client_name.c_str());
      return;
    }
    FileId file_id;
    auto known = session.files.find(FileKey(client_name, file_name));
    if (known != session.files.end()) {
      file_id = known->second;
    } else if (!FileId::FromHex(file_name, &file_id)) {
      std::printf("error: unknown file '%s' (pass a 40-hex fileId to fetch foreign files)\n",
                  file_name.c_str());
      return;
    }
    LookupResult r = it->second->Lookup(file_id);
    if (!r.found()) {
      std::printf("not found\n");
    } else {
      std::printf("ok: %llu bytes in %d hops from %s%s%s\n",
                  static_cast<unsigned long long>(r.file_size), r.hops,
                  r.served_by.ToHex().substr(0, 8).c_str(),
                  r.served_from_cache ? " (cache)" : "",
                  r.content != nullptr ? (" | " + *r.content).c_str() : "");
    }
  } else if (command == "reclaim") {
    std::string client_name, file_name;
    in >> client_name >> file_name;
    if (!RequireNetwork(session)) {
      return;
    }
    auto it = session.clients.find(client_name);
    if (it == session.clients.end()) {
      std::printf("error: unknown client '%s'\n", client_name.c_str());
      return;
    }
    auto known = session.files.find(FileKey(client_name, file_name));
    if (known == session.files.end()) {
      std::printf("error: unknown file '%s'\n", file_name.c_str());
      return;
    }
    ReclaimResult r = it->second->Reclaim(known->second);
    std::printf("%s: %u replicas, %llu bytes reclaimed\n", r.accepted() ? "ok" : "rejected",
                r.replicas_reclaimed, static_cast<unsigned long long>(r.bytes_reclaimed));
    session.files.erase(known);
  } else if (command == "join") {
    size_t count = 0;
    uint64_t capacity = 0;
    in >> count >> capacity;
    if (!RequireNetwork(session) || count == 0 || capacity == 0) {
      return;
    }
    for (size_t i = 0; i < count; ++i) {
      session.nodes.push_back(session.network->AddStorageNode(capacity));
    }
    std::printf("ok: %zu nodes joined (%zu live)\n", count,
                session.network->overlay().live_count());
  } else if (command == "fail") {
    size_t count = 0;
    in >> count;
    if (!RequireNetwork(session) || count == 0) {
      return;
    }
    for (size_t i = 0; i < count; ++i) {
      std::vector<NodeId> live = session.network->overlay().live_nodes();
      if (live.size() <= 2) {
        break;
      }
      session.network->FailStorageNode(live[session.rng->NextBelow(live.size())]);
    }
    std::printf("ok: %zu live nodes remain\n", session.network->overlay().live_count());
  } else if (command == "stats") {
    if (!RequireNetwork(session)) {
      return;
    }
    const PastCounters& c = session.network->CountersSnapshot();
    PastNetwork::ReplicaCensus census = session.network->CountReplicas();
    std::printf("nodes=%zu utilization=%.2f%% replicas=%llu diverted=%llu lookups=%llu "
                "cache_hits=%llu recreated=%llu lost=%llu\n",
                session.network->overlay().live_count(),
                session.network->utilization() * 100.0,
                static_cast<unsigned long long>(census.replicas),
                static_cast<unsigned long long>(census.diverted),
                static_cast<unsigned long long>(c.lookups),
                static_cast<unsigned long long>(c.lookups_from_cache),
                static_cast<unsigned long long>(c.replicas_recreated),
                static_cast<unsigned long long>(c.files_lost));
  } else if (command == "quit" || command == "exit") {
    std::exit(0);
  } else {
    std::printf("error: unknown command '%s'\n", command.c_str());
  }
}

}  // namespace

int main() {
  Session session;
  std::string line;
  while (std::getline(std::cin, line)) {
    HandleLine(session, line);
  }
  return 0;
}
