// Arithmetic over GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1 (0x11b).
// Substrate for the Reed-Solomon codec of section 3.6.
#ifndef SRC_ERASURE_GF256_H_
#define SRC_ERASURE_GF256_H_

#include <cstdint>

namespace past {

class Gf256 {
 public:
  // Builds the exp/log tables once.
  static const Gf256& Instance();

  uint8_t Add(uint8_t a, uint8_t b) const { return a ^ b; }
  uint8_t Sub(uint8_t a, uint8_t b) const { return a ^ b; }
  uint8_t Mul(uint8_t a, uint8_t b) const;
  uint8_t Div(uint8_t a, uint8_t b) const;  // b must be nonzero
  uint8_t Inv(uint8_t a) const;             // a must be nonzero
  uint8_t Pow(uint8_t a, unsigned e) const;

  // Generator element (3 for this polynomial).
  uint8_t generator() const { return 3; }
  uint8_t Exp(unsigned i) const { return exp_[i % 255]; }

 private:
  Gf256();

  uint8_t exp_[512];
  uint8_t log_[256];
};

}  // namespace past

#endif  // SRC_ERASURE_GF256_H_
