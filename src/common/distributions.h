// Statistical distributions used by the workload generators and the storage
// capacity model (paper section 5.1).
#ifndef SRC_COMMON_DISTRIBUTIONS_H_
#define SRC_COMMON_DISTRIBUTIONS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/rng.h"

namespace past {

// Normal distribution truncated to [lower, upper] by resampling. This is the
// model the paper uses for per-node storage capacities (Table 1).
class TruncatedNormal {
 public:
  TruncatedNormal(double mean, double stddev, double lower, double upper);

  double Sample(Rng& rng) const;

  double mean() const { return mean_; }
  double stddev() const { return stddev_; }
  double lower() const { return lower_; }
  double upper() const { return upper_; }

 private:
  double mean_;
  double stddev_;
  double lower_;
  double upper_;
};

// Zipf distribution over ranks {0, ..., n-1} with exponent alpha:
// P(rank i) proportional to 1/(i+1)^alpha. Web request popularity is
// Zipf-like with alpha slightly below 1 (Breslau et al., cited by the paper).
// Sampling is O(log n) via a precomputed CDF and binary search.
class Zipf {
 public:
  Zipf(size_t n, double alpha);

  size_t Sample(Rng& rng) const;

  size_t n() const { return cdf_.size(); }
  double alpha() const { return alpha_; }

 private:
  double alpha_;
  std::vector<double> cdf_;
};

// Lognormal body with an optional Pareto upper tail. Used to synthesize file
// size distributions matched to the published trace statistics: the lognormal
// reproduces a given median and mean, while the Pareto tail supplies the rare
// very large files (the NLANR trace tops out at 138 MB, far beyond what a
// lognormal calibrated to its mean/median would produce).
class FileSizeDistribution {
 public:
  // Calibrates the lognormal so that its median and mean match. The top
  // `tail_fraction` of samples are redrawn from a Pareto distribution with
  // shape `tail_alpha` starting at the lognormal's (1 - tail_fraction)
  // quantile, capped at `max_size`.
  FileSizeDistribution(uint64_t median, uint64_t mean, double tail_fraction, double tail_alpha,
                       uint64_t max_size);

  uint64_t Sample(Rng& rng) const;

  double mu() const { return mu_; }
  double sigma() const { return sigma_; }

 private:
  double mu_;     // lognormal location (log of median)
  double sigma_;  // lognormal shape
  double tail_fraction_;
  double tail_alpha_;
  double tail_start_;
  uint64_t max_size_;
};

}  // namespace past

#endif  // SRC_COMMON_DISTRIBUTIONS_H_
