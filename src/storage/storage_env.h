// StorageEnv: the small VFS every durable-store I/O goes through.
//
// The write-ahead log (src/storage/wal.h) never touches the filesystem
// directly; it calls this interface, so the backing world is injectable. Two
// implementations exist:
//
//  - PosixEnv: real files under a root directory (append/fsync/rename/...).
//  - FaultEnv: a deterministic in-memory disk model with crash-point fault
//    injection. Every call is a numbered "syscall"; the env can be armed to
//    kill the process model at any syscall boundary, tear the last write at
//    a byte offset (the unsynced tail is flushed in write order, so a crash
//    can expose a prefix of it), or silently drop an fsync (a lying disk).
//    That makes every crash point enumerable and replayable under seed
//    control — the basis of the crash-matrix tests.
//
// Paths are (dir, name) pairs: one directory per node, flat files inside.
#ifndef SRC_STORAGE_STORAGE_ENV_H_
#define SRC_STORAGE_STORAGE_ENV_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace past {

class StorageEnv {
 public:
  virtual ~StorageEnv() = default;

  // Appends `data` to dir/name, creating directory and file as needed.
  virtual bool Append(const std::string& dir, const std::string& name,
                      std::string_view data) = 0;

  // Makes everything appended to dir/name so far durable. Without a
  // successful Fsync, appended bytes may vanish at a crash.
  virtual bool Fsync(const std::string& dir, const std::string& name) = 0;

  // Reads the entire file into `out`. False if it does not exist.
  virtual bool Read(const std::string& dir, const std::string& name, std::string* out) = 0;

  // Names of the files in `dir`, sorted; empty for a missing directory.
  virtual std::vector<std::string> List(const std::string& dir) = 0;

  // Atomically renames dir/from to dir/to (replacing any existing `to`).
  virtual bool Rename(const std::string& dir, const std::string& from,
                      const std::string& to) = 0;

  // Removes dir/name. False if it does not exist.
  virtual bool Remove(const std::string& dir, const std::string& name) = 0;
};

// Real POSIX files under `root`/<dir>/<name>. Append opens O_APPEND per call
// (the journal batches, so this is not a hot path) and Fsync calls fsync(2).
class PosixEnv : public StorageEnv {
 public:
  explicit PosixEnv(std::string root);

  bool Append(const std::string& dir, const std::string& name, std::string_view data) override;
  bool Fsync(const std::string& dir, const std::string& name) override;
  bool Read(const std::string& dir, const std::string& name, std::string* out) override;
  std::vector<std::string> List(const std::string& dir) override;
  bool Rename(const std::string& dir, const std::string& from, const std::string& to) override;
  bool Remove(const std::string& dir, const std::string& name) override;

 private:
  std::string Path(const std::string& dir, const std::string& name) const;
  std::string root_;
};

// Deterministic in-memory disk with crash-point fault injection.
//
// Model: each file keeps the full byte string written so far plus a durable
// prefix length advanced by Fsync. A crash (global or per-directory) replaces
// every file's contents with its durable prefix — except the directory's most
// recently appended file, which additionally keeps the first `torn` bytes of
// its unsynced tail, modeling an in-order partial page-cache flush that can
// cut a log record in half.
class FaultEnv : public StorageEnv {
 public:
  FaultEnv() = default;

  bool Append(const std::string& dir, const std::string& name, std::string_view data) override;
  bool Fsync(const std::string& dir, const std::string& name) override;
  bool Read(const std::string& dir, const std::string& name, std::string* out) override;
  std::vector<std::string> List(const std::string& dir) override;
  bool Rename(const std::string& dir, const std::string& from, const std::string& to) override;
  bool Remove(const std::string& dir, const std::string& name) override;

  // --- fault controls ---

  // Arms a global crash: the syscall with 1-based index `n` fails and every
  // later call fails too, until Restart(). 0 disarms. An Append that crashes
  // first transfers its bytes to the unsynced tail, so the tear can land in
  // the middle of the record being written.
  void set_crash_at(uint64_t n) { crash_at_ = n; }

  // Bytes of the last-written file's unsynced tail that survive a crash.
  void set_torn_tail_bytes(uint64_t n) { torn_tail_bytes_ = n; }

  // The fsync with syscall index `n` reports success without making anything
  // durable — a lying disk. 0 disarms.
  void set_drop_fsync_at(uint64_t n) { drop_fsync_at_ = n; }

  // Sticky fsync failure for one directory (fsync returns false, no crash).
  void FailFsyncs(const std::string& dir, bool fail);

  // Power-loss for one directory only: applies the crash image (durable
  // prefix + `torn` bytes of the last write's unsynced tail) and marks the
  // directory dead — all writes to it fail until ReviveDir. Reads still see
  // the crash image, which is what recovery replays. Not counted as a
  // syscall; the simulation calls this when it cuts a node off.
  void CrashDir(const std::string& dir, uint64_t torn);
  void ReviveDir(const std::string& dir);

  // Clears the global crashed state after the images were applied, so a
  // recovery pass can run against the post-crash disk.
  void Restart();

  uint64_t syscalls() const { return syscalls_; }
  bool crashed() const { return crashed_; }

 private:
  struct MemFile {
    std::string data;     // everything written, in order
    size_t durable = 0;   // prefix made durable by fsync
  };
  struct MemDir {
    std::map<std::string, MemFile> files;  // ordered => deterministic List
    std::string last_write;                // file of the most recent Append
    bool dead = false;
    bool fail_fsync = false;
  };

  // Returns true when the call must fail (env crashed / dir dead); otherwise
  // counts the syscall and fires the armed crash if this is its index.
  bool EnterSyscall(const std::string& dir, bool* crash_now);
  void ApplyCrashImage(MemDir& d, uint64_t torn);
  void CrashAll();

  std::map<std::string, MemDir> dirs_;
  uint64_t syscalls_ = 0;
  uint64_t crash_at_ = 0;
  uint64_t drop_fsync_at_ = 0;
  uint64_t torn_tail_bytes_ = 0;
  bool crashed_ = false;
};

}  // namespace past

#endif  // SRC_STORAGE_STORAGE_ENV_H_
