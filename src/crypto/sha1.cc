#include "src/crypto/sha1.h"

#include <cstring>

namespace past {
namespace {

inline uint32_t Rotl32(uint32_t x, int k) { return (x << k) | (x >> (32 - k)); }

}  // namespace

Sha1::Sha1() { Reset(); }

void Sha1::Reset() {
  h_[0] = 0x67452301;
  h_[1] = 0xEFCDAB89;
  h_[2] = 0x98BADCFE;
  h_[3] = 0x10325476;
  h_[4] = 0xC3D2E1F0;
  total_bytes_ = 0;
  buffer_len_ = 0;
}

void Sha1::Update(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  total_bytes_ += len;
  if (buffer_len_ > 0) {
    size_t take = std::min(len, sizeof(buffer_) - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, p, take);
    buffer_len_ += take;
    p += take;
    len -= take;
    if (buffer_len_ == sizeof(buffer_)) {
      ProcessBlock(buffer_);
      buffer_len_ = 0;
    }
  }
  while (len >= 64) {
    ProcessBlock(p);
    p += 64;
    len -= 64;
  }
  if (len > 0) {
    std::memcpy(buffer_, p, len);
    buffer_len_ = len;
  }
}

Sha1Digest Sha1::Final() {
  uint64_t bit_len = total_bytes_ * 8;
  // Append 0x80 then zeros until 8 bytes remain in the block, then the length.
  uint8_t pad = 0x80;
  Update(&pad, 1);
  uint8_t zero = 0;
  while (buffer_len_ != 56) {
    Update(&zero, 1);
  }
  uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  }
  // Bypass total_bytes_ accounting for the trailer (it no longer matters).
  std::memcpy(buffer_ + buffer_len_, len_bytes, 8);
  ProcessBlock(buffer_);
  buffer_len_ = 0;

  Sha1Digest digest;
  for (int i = 0; i < 5; ++i) {
    digest[static_cast<size_t>(i * 4 + 0)] = static_cast<uint8_t>(h_[i] >> 24);
    digest[static_cast<size_t>(i * 4 + 1)] = static_cast<uint8_t>(h_[i] >> 16);
    digest[static_cast<size_t>(i * 4 + 2)] = static_cast<uint8_t>(h_[i] >> 8);
    digest[static_cast<size_t>(i * 4 + 3)] = static_cast<uint8_t>(h_[i]);
  }
  return digest;
}

void Sha1::ProcessBlock(const uint8_t* block) {
  uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<uint32_t>(block[i * 4]) << 24) |
           (static_cast<uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = Rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    uint32_t f, k;
    if (i < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5A827999;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDC;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6;
    }
    uint32_t temp = Rotl32(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = Rotl32(b, 30);
    b = a;
    a = temp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

Sha1Digest Sha1::Hash(std::string_view data) {
  Sha1 ctx;
  ctx.Update(data);
  return ctx.Final();
}

std::string DigestToHex(const Sha1Digest& digest) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(40);
  for (uint8_t byte : digest) {
    out.push_back(kDigits[byte >> 4]);
    out.push_back(kDigits[byte & 0xf]);
  }
  return out;
}

}  // namespace past
