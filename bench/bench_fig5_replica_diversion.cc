// Reproduces Figure 5: the cumulative ratio of diverted replicas to all
// stored replicas versus storage utilization (t_pri=0.1, t_div=0.05).
//
// Paper shape: <10% of replicas are diverted at 80% utilization; the ratio
// rises toward ~15-18% as the system saturates.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace past;
  BenchStopwatch stopwatch;
  CommandLine cli(argc, argv);
  ExperimentConfig config = BenchConfig(cli);
  PrintHeader("Figure 5: replica diversion ratio vs utilization", config);

  ExperimentResult r = RunExperimentSuite({config}, BenchSuiteOptions(cli)).front();
  std::printf("utilization,replica_diversion_ratio\n");
  for (const CurveSample& s : r.curve) {
    double denom = std::max<uint64_t>(s.replicas_stored, 1);
    std::printf("%.4f,%.6f\n", s.utilization, static_cast<double>(s.replicas_diverted) / denom);
  }
  std::printf("\n# paper: ratio < 0.10 at 80%% utilization, ~0.16 at full saturation.\n");
  PrintBenchFooter(stopwatch);
  return 0;
}
