// SHA-1 (FIPS 180-1), implemented from scratch.
//
// PAST uses SHA-1 everywhere identifiers are minted: fileIds are the SHA-1 of
// (file name, owner public key, salt), nodeIds the SHA-1 of the node public
// key, and file certificates carry a SHA-1 content hash. SHA-1 is not
// collision-resistant by modern standards; we reproduce the paper's choice
// because identifier uniformity, not adversarial collision resistance, is
// what the evaluated mechanisms depend on.
#ifndef SRC_CRYPTO_SHA1_H_
#define SRC_CRYPTO_SHA1_H_

#include <array>
#include <cstdint>
#include <cstddef>
#include <string>
#include <string_view>

namespace past {

using Sha1Digest = std::array<uint8_t, 20>;

// Incremental SHA-1 context.
class Sha1 {
 public:
  Sha1();

  void Update(const void* data, size_t len);
  void Update(std::string_view data) { Update(data.data(), data.size()); }

  // Finalizes and returns the digest. The context must not be reused after
  // Final() without calling Reset().
  Sha1Digest Final();

  void Reset();

  // One-shot convenience.
  static Sha1Digest Hash(std::string_view data);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t h_[5];
  uint64_t total_bytes_;
  uint8_t buffer_[64];
  size_t buffer_len_;
};

// Formats a digest as 40 lowercase hex characters.
std::string DigestToHex(const Sha1Digest& digest);

}  // namespace past

#endif  // SRC_CRYPTO_SHA1_H_
