// Observability layer tests: instrument semantics, bucket edges, scope
// aggregation, trace sinks, and agreement between the metrics registry and
// the legacy harness headline numbers.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/harness/experiment.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/past/client.h"

namespace past {
namespace obs {
namespace {

TEST(ObsMetricsTest, CounterIsMonotonic) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(ObsMetricsTest, GaugeMovesBothWays) {
  Gauge g;
  g.Set(10.0);
  g.Add(5.0);
  g.Sub(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 8.0);
}

TEST(ObsMetricsTest, HistogramBucketEdges) {
  HistogramMetric h({1.0, 2.0, 4.0});
  ASSERT_EQ(h.buckets().size(), 4u);  // 3 bounds + overflow

  // An observation exactly on a bound lands in that bound's bucket
  // (bucket i counts observations <= upper_bounds[i]).
  h.Observe(1.0);
  EXPECT_EQ(h.buckets()[0], 1u);
  h.Observe(0.0);
  EXPECT_EQ(h.buckets()[0], 2u);
  h.Observe(1.5);
  EXPECT_EQ(h.buckets()[1], 1u);
  h.Observe(4.0);
  EXPECT_EQ(h.buckets()[2], 1u);
  h.Observe(4.0001);  // strictly above the last bound -> overflow bucket
  EXPECT_EQ(h.buckets()[3], 1u);

  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 1.0 + 0.0 + 1.5 + 4.0 + 4.0001);
  EXPECT_DOUBLE_EQ(h.mean(), h.sum() / 5.0);
}

TEST(ObsMetricsTest, BucketHelpers) {
  EXPECT_EQ(LinearBuckets(0.0, 1.0, 3), (std::vector<double>{0.0, 1.0, 2.0}));
  EXPECT_EQ(ExponentialBuckets(256.0, 4.0, 3), (std::vector<double>{256.0, 1024.0, 4096.0}));
  std::vector<double> hops = HopBuckets();
  ASSERT_EQ(hops.size(), 16u);
  EXPECT_DOUBLE_EQ(hops.front(), 0.0);
  EXPECT_DOUBLE_EQ(hops.back(), 15.0);
}

TEST(ObsMetricsTest, RegistryCreatesOnFirstAccessWithStableReferences) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.FindCounter("x"), nullptr);
  Counter& a = registry.GetCounter("x");
  Counter& b = registry.GetCounter("x");
  EXPECT_EQ(&a, &b);
  a.Inc(3);
  ASSERT_NE(registry.FindCounter("x"), nullptr);
  EXPECT_EQ(registry.FindCounter("x")->value(), 3u);

  // Histogram bounds are consulted only on first creation.
  HistogramMetric& h1 = registry.GetHistogram("h", {1.0, 2.0});
  HistogramMetric& h2 = registry.GetHistogram("h", {99.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.upper_bounds().size(), 2u);
}

TEST(ObsMetricsTest, SnapshotMergeAggregatesScopes) {
  // Two "node" registries merged into one network-wide view.
  MetricsRegistry node_a;
  MetricsRegistry node_b;
  node_a.GetCounter("node.cache.hits").Inc(3);
  node_b.GetCounter("node.cache.hits").Inc(4);
  node_a.GetGauge("node.store.used_bytes").Set(100.0);
  node_b.GetGauge("node.store.used_bytes").Set(50.0);
  node_a.GetHistogram("node.h", {1.0, 2.0}).Observe(0.5);
  node_b.GetHistogram("node.h", {1.0, 2.0}).Observe(1.5);
  node_b.GetHistogram("node.h", {1.0, 2.0}).Observe(9.0);

  MetricsSnapshot global = node_a.Snapshot();
  global.Merge(node_b.Snapshot());

  EXPECT_EQ(global.CounterValue("node.cache.hits"), 7u);
  EXPECT_DOUBLE_EQ(global.GaugeValue("node.store.used_bytes"), 150.0);
  const HistogramSnapshot* h = global.FindHistogram("node.h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 3u);
  EXPECT_EQ(h->buckets, (std::vector<uint64_t>{1, 1, 1}));
  EXPECT_DOUBLE_EQ(h->sum, 11.0);

  // Missing names read as zero instead of throwing.
  EXPECT_EQ(global.CounterValue("never.created"), 0u);
  EXPECT_DOUBLE_EQ(global.GaugeValue("never.created"), 0.0);
  EXPECT_EQ(global.FindHistogram("never.created"), nullptr);
}

TEST(ObsMetricsTest, JsonOutputContainsAllSections) {
  MetricsRegistry registry;
  registry.GetCounter("c.one").Inc(7);
  registry.GetGauge("g.one").Set(2.5);
  registry.GetHistogram("h.one", {1.0}).Observe(0.5);
  std::string json = MetricsJson(registry.Snapshot());
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"c.one\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"g.one\": 2.5"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"upper_bounds\""), std::string::npos);
}

TEST(ObsTraceTest, RingBufferKeepsMostRecentAndCountsDrops) {
  RingBufferTraceSink sink(2);
  for (uint64_t i = 0; i < 3; ++i) {
    OpTrace event;
    event.seq = i;
    sink.Record(event);
  }
  EXPECT_EQ(sink.recorded(), 3u);
  EXPECT_EQ(sink.dropped(), 1u);
  ASSERT_EQ(sink.events().size(), 2u);
  EXPECT_EQ(sink.events().front().seq, 1u);
  EXPECT_EQ(sink.events().back().seq, 2u);
}

TEST(ObsTraceTest, OpTraceJsonIsOneObjectWithKnownKeys) {
  OpTrace event;
  event.kind = TraceOpKind::kLookup;
  event.status = "found";
  event.hops = 3;
  std::string line = OpTraceJson(event);
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_NE(line.find("\"op\": \"lookup\""), std::string::npos);
  EXPECT_NE(line.find("\"status\": \"found\""), std::string::npos);
  EXPECT_NE(line.find("\"hops\": 3"), std::string::npos);
}

// Network-level: every node keeps its own registry; the network snapshot is
// the merge of the network scope plus every live node scope.
TEST(ObsScopeTest, PerNodeRegistriesAggregateIntoNetworkSnapshot) {
  PastConfig config;
  config.k = 3;
  TestDeployment deployment =
      BuildDeployment(/*num_nodes=*/40, /*capacity_per_node=*/10'000'000, config, /*seed=*/901);
  PastNetwork& network = *deployment.network;
  PastClient client(network, deployment.node_ids.front(), 1ull << 40, 902);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(client.Insert("file" + std::to_string(i), 4000 + i).stored);
  }

  MetricsSnapshot global = network.SnapshotMetrics();
  EXPECT_EQ(global.CounterValue("past.insert.attempts"), 20u);
  EXPECT_DOUBLE_EQ(global.GaugeValue("past.replicas.stored"), 60.0);  // 20 files * k=3

  // The per-node store gauges, summed over all nodes, match the global view.
  double replicas = 0.0;
  double used_bytes = 0.0;
  for (const NodeId& id : deployment.node_ids) {
    MetricsSnapshot node = network.NodeMetrics(id);
    replicas += node.GaugeValue("node.store.replicas");
    used_bytes += node.GaugeValue("node.store.used_bytes");
  }
  EXPECT_DOUBLE_EQ(replicas, 60.0);
  EXPECT_DOUBLE_EQ(global.GaugeValue("node.store.replicas"), 60.0);
  EXPECT_DOUBLE_EQ(global.GaugeValue("node.store.used_bytes"), used_bytes);
  EXPECT_DOUBLE_EQ(global.GaugeValue("past.stored_bytes"), used_bytes);
}

TEST(ObsScopeTest, JsonlTraceSinkWritesOneLinePerOperation) {
  const std::string path = ::testing::TempDir() + "/obs_trace_test.jsonl";
  PastConfig config;
  config.k = 3;
  TestDeployment deployment =
      BuildDeployment(/*num_nodes=*/30, /*capacity_per_node=*/10'000'000, config, /*seed=*/903);
  PastNetwork& network = *deployment.network;
  auto sink = std::make_shared<JsonlTraceSink>(path);
  ASSERT_TRUE(sink->ok());
  network.set_trace_sink(sink);

  PastClient client(network, deployment.node_ids.front(), 1ull << 40, 904);
  ClientInsertResult inserted = client.Insert("traced.bin", 2048);
  ASSERT_TRUE(inserted.stored);
  client.set_access_node(deployment.node_ids.back());
  LookupResult looked_up = client.Lookup(inserted.file_id);
  ASSERT_EQ(looked_up.status, LookupStatus::kFound);
  sink->Flush();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) {
    lines.push_back(line);
  }
  ASSERT_GE(lines.size(), 2u);
  EXPECT_NE(lines.front().find("\"op\": \"insert\""), std::string::npos);
  EXPECT_NE(lines.front().find("\"status\": \"stored\""), std::string::npos);
  EXPECT_NE(lines.back().find("\"op\": \"lookup\""), std::string::npos);
  EXPECT_NE(lines.back().find("\"status\": \"found\""), std::string::npos);
  // Sequence numbers are monotone per run.
  EXPECT_NE(lines.front().find("\"seq\": 0"), std::string::npos);
  std::remove(path.c_str());
}

// Harness-level: the registry snapshot embedded in ExperimentResult must
// reproduce the legacy headline numbers, including the failure ratio.
TEST(ObsHarnessTest, RegistrySnapshotMatchesLegacyHeadlineNumbers) {
  ExperimentConfig config;
  config.num_nodes = 50;
  config.catalog_size = 0;  // auto: 800 files/node
  config.curve_samples = 10;
  config.seed = 905;
  ExperimentResult result = RunExperiment(config);

  const MetricsSnapshot& m = result.metrics;
  EXPECT_EQ(m.CounterValue("client.files_attempted"), result.files_attempted);
  EXPECT_EQ(m.CounterValue("client.files_stored"), result.files_inserted);
  EXPECT_EQ(m.CounterValue("client.files_failed"), result.files_failed);

  ASSERT_GT(m.CounterValue("client.files_attempted"), 0u);
  double registry_failure_ratio =
      static_cast<double>(m.CounterValue("client.files_failed")) /
      static_cast<double>(m.CounterValue("client.files_attempted"));
  EXPECT_DOUBLE_EQ(registry_failure_ratio, result.failure_ratio);

  // The insert-size histogram saw every attempted file.
  const HistogramSnapshot* sizes = m.FindHistogram("past.insert.file_size_bytes");
  ASSERT_NE(sizes, nullptr);
  EXPECT_GE(sizes->count, result.files_attempted);

  // Saturation run: replica diversion happened and was tallied at the
  // storage layer too.
  EXPECT_GT(m.GaugeValue("past.replicas.diverted"), 0.0);
  EXPECT_GT(m.GaugeValue("past.utilization"), 0.5);
}

TEST(ObsHarnessTest, ConfigValidateReportsHumanReadableErrors) {
  ExperimentConfig ok;
  ok.num_nodes = 50;
  EXPECT_TRUE(ok.Validate().empty());

  ExperimentConfig bad;
  bad.num_nodes = 0;
  bad.k = 40;           // exceeds what a leaf set of 32 can certify
  bad.t_pri = 0.1;
  bad.t_div = 0.5;      // t_div must not exceed t_pri
  bad.cache_mode = CacheMode::kGreedyDualSize;
  bad.cache_fraction_c = 0.0;
  std::vector<std::string> errors = bad.Validate();
  EXPECT_GE(errors.size(), 4u);
  bool mentions_k = false;
  for (const std::string& error : errors) {
    if (error.find("k") != std::string::npos && error.find("leaf") != std::string::npos) {
      mentions_k = true;
    }
  }
  EXPECT_TRUE(mentions_k);

  EXPECT_THROW(RunExperiment(bad), std::invalid_argument);
}

}  // namespace
}  // namespace obs
}  // namespace past
