// SimTransport: event-queue-scheduled delivery with simulated latency and
// seeded fault injection.
//
// Each Send computes a latency from the LatencyModel and the message's route
// shape (hops, proximity distance, payload bytes), applies the FaultPlan
// (drop / duplicate / delay, plus node partitions), and schedules the
// delivery continuation on the EventQueue. Determinism: for a fixed seed and
// call sequence, the fault decisions and delivery order are identical run to
// run — equal-time deliveries execute in FIFO send order (the EventQueue's
// sequence tie-break).
#ifndef SRC_NET_SIM_TRANSPORT_H_
#define SRC_NET_SIM_TRANSPORT_H_

#include <array>
#include <unordered_set>

#include "src/common/rng.h"
#include "src/net/fault_plan.h"
#include "src/net/latency_model.h"
#include "src/net/transport.h"

namespace past {

class SimTransport : public Transport {
 public:
  struct Options {
    LatencyModel latency;
    FaultPlan faults;
    uint64_t seed = 1;
  };

  // `queue` drives virtual time; `stats` is the shared ledger (see
  // Transport). Both must outlive the transport.
  SimTransport(EventQueue& queue, const Options& options, TransportStats* stats);

  void Send(const Message& msg, DeliverFn on_deliver) override;

  // Runs queue events until no fabric message is in flight. Other timers on
  // the same queue (keep-alive rounds, ...) that come due earlier execute in
  // time order along the way — this is a simulation step, not a bypass.
  void Settle() override;

  SimTime now() const override { return queue_.now(); }

  // Op timeouts are plain events on the driving queue, so they interleave
  // with deliveries in virtual-time order.
  TimerId ScheduleTimer(SimTime delay_ms, std::function<void()> fn) override {
    return queue_.ScheduleAfter(delay_ms, std::move(fn));
  }
  bool CancelTimer(TimerId id) override { return queue_.Cancel(id); }

  // One queue event — delivery, op timeout, or any co-scheduled timer (the
  // drain is a simulation step, like Settle()).
  bool StepOne() override { return queue_.Step(); }

  uint64_t InFlightDeliveries() const override { return in_flight_; }

  const Options& options() const { return options_; }

  // --- fault control (tests and experiments poke these mid-run) ---

  // Replaces the probabilistic fault plan in place. The simulation soak
  // harness uses this to run fault-free convergence phases at invariant
  // checkpoints without rebuilding the transport (partitions and DropNext
  // targeting are unaffected).
  void set_faults(const FaultPlan& faults) { options_.faults = faults; }

  // A partitioned node is cut off: every message from or to it is dropped.
  void Partition(const NodeId& id) { partitioned_.insert(id); }
  void Heal(const NodeId& id) { partitioned_.erase(id); }
  bool IsPartitioned(const NodeId& id) const { return partitioned_.count(id) != 0; }

  // Deterministic targeted fault: silently drop the next `count` sends of
  // `type` (independent of the probabilistic plan). Tests use this to lose
  // one specific protocol message instead of rolling dice.
  void DropNext(MessageType type, uint64_t count) {
    drop_next_[static_cast<size_t>(type)] += count;
  }

  uint64_t in_flight() const { return in_flight_; }
  uint64_t delivered() const { return delivered_; }

 private:
  double LatencyFor(const Message& msg) const;
  bool ShouldDrop(const Message& msg);

  EventQueue& queue_;
  Options options_;
  Rng rng_;
  uint64_t in_flight_ = 0;
  uint64_t delivered_ = 0;
  std::unordered_set<NodeId, NodeIdHash> partitioned_;
  std::array<uint64_t, kMessageTypeCount> drop_next_{};
};

}  // namespace past

#endif  // SRC_NET_SIM_TRANSPORT_H_
