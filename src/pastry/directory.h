// NodeDirectory: the one lookup surface a Pastry node's routing state needs
// from its surroundings — id interning, index->id resolution, liveness, and
// the proximity metric.
//
// Before this existed, every node carried two std::function closures
// (proximity for the routing table, proximity for the neighborhood set) and
// every aliveness check was an id -> index hash probe through a callback.
// At a million nodes that is two heap-allocated closures per node and a
// cache-missing probe per leaf-set member per routing hop. The directory
// replaces all of it with one shared struct of C function pointers: nodes
// store dense u32 indices instead of 16-byte ids where possible, aliveness
// is an array load, and the per-node footprint drops by the closures plus
// the fattened entries.
//
// PastryNetwork provides the canonical implementation (backed by its
// interning table, alive bits, and emulated topology). SimpleNodeDirectory
// below is a self-contained registry for unit tests and standalone nodes.
#ifndef SRC_PASTRY_DIRECTORY_H_
#define SRC_PASTRY_DIRECTORY_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/flat_table.h"
#include "src/common/node_id.h"

namespace past {

// Sentinel for "no entry" in index-valued routing state.
inline constexpr uint32_t kInvalidNodeIndex = static_cast<uint32_t>(-1);

// Plain function pointers + context, not virtuals: the directory is consulted
// on every hop of every route, and a PastryNode must stay trivially small —
// one 8-byte pointer to a struct shared by the whole overlay.
struct NodeDirectory {
  void* ctx = nullptr;

  // Returns the dense index for `id`, interning it if never seen. Indices
  // are stable for the directory's lifetime.
  uint32_t (*intern)(void* ctx, const NodeId& id) = nullptr;

  // The id interned at `index` (valid for any index returned by intern).
  const NodeId& (*resolve)(void* ctx, uint32_t index) = nullptr;

  // Liveness of the node interned at `index`.
  bool (*alive)(void* ctx, uint32_t index) = nullptr;

  // Proximity distance between two nodes (1e9 when either is unknown to the
  // topology). May be null: consumers then treat all nodes as equidistant,
  // matching the historical "no proximity function" behavior.
  double (*distance)(void* ctx, const NodeId& a, const NodeId& b) = nullptr;
};

// A self-contained directory for tests, benches, and standalone PastryNode
// instances: interns into its own table, everything defaults to alive, and
// the distance metric is an optional std::function.
class SimpleNodeDirectory {
 public:
  using DistanceFn = std::function<double(const NodeId& a, const NodeId& b)>;

  SimpleNodeDirectory() {
    dir_.ctx = this;
    dir_.intern = &InternThunk;
    dir_.resolve = &ResolveThunk;
    dir_.alive = &AliveThunk;
    dir_.distance = nullptr;
  }
  explicit SimpleNodeDirectory(DistanceFn distance) : SimpleNodeDirectory() {
    distance_ = std::move(distance);
    dir_.distance = &DistanceThunk;
  }

  const NodeDirectory* view() const { return &dir_; }

  uint32_t Intern(const NodeId& id) {
    auto [slot, inserted] = index_.TryEmplace(id, static_cast<uint32_t>(ids_.size()));
    if (inserted) {
      ids_.push_back(id);
      alive_.push_back(1);
    }
    return *slot;
  }

  void SetAlive(const NodeId& id, bool alive) { alive_[Intern(id)] = alive ? 1 : 0; }

 private:
  static uint32_t InternThunk(void* ctx, const NodeId& id) {
    return static_cast<SimpleNodeDirectory*>(ctx)->Intern(id);
  }
  static const NodeId& ResolveThunk(void* ctx, uint32_t index) {
    return static_cast<SimpleNodeDirectory*>(ctx)->ids_[index];
  }
  static bool AliveThunk(void* ctx, uint32_t index) {
    return static_cast<SimpleNodeDirectory*>(ctx)->alive_[index] != 0;
  }
  static double DistanceThunk(void* ctx, const NodeId& a, const NodeId& b) {
    return static_cast<SimpleNodeDirectory*>(ctx)->distance_(a, b);
  }

  NodeDirectory dir_;
  FlatTable<NodeId, uint32_t, NodeIdHash> index_;
  std::vector<NodeId> ids_;
  std::vector<uint8_t> alive_;
  DistanceFn distance_;
};

}  // namespace past

#endif  // SRC_PASTRY_DIRECTORY_H_
