// Unit tests for PastryNode::NextHop — the three forwarding cases of the
// Pastry algorithm (paper section 2.1), exercised on hand-built node state
// rather than a live overlay.
#include <gtest/gtest.h>

#include "src/pastry/directory.h"
#include "src/pastry/node.h"

namespace past {
namespace {

PastryConfig SmallConfig() {
  PastryConfig config;
  config.b = 4;
  config.leaf_set_size = 4;
  config.neighborhood_size = 4;
  return config;
}

TEST(PastryNodeTest, SelfIsDestinationWhenAlone) {
  SimpleNodeDirectory dir;
  PastryNode node(NodeId(1, 0), SmallConfig(), dir.view());
  EXPECT_FALSE(node.NextHop(NodeId(2, 0)).has_value());
}

TEST(PastryNodeTest, LeafSetCaseDeliversToClosestMember) {
  // Key inside the leaf set range: forward to the numerically closest
  // member, or stop if we are it.
  NodeId self(0, 1000);
  SimpleNodeDirectory dir;
  PastryNode node(self, SmallConfig(), dir.view());
  node.Learn(NodeId(0, 900));
  node.Learn(NodeId(0, 1100));

  auto hop = node.NextHop(NodeId(0, 1090));
  ASSERT_TRUE(hop.has_value());
  EXPECT_EQ(*hop, NodeId(0, 1100));

  // Key closest to ourselves: we are the destination.
  EXPECT_FALSE(node.NextHop(NodeId(0, 1010)).has_value());
}

TEST(PastryNodeTest, RoutingTableCaseExtendsPrefix) {
  // Key far outside the leaf set: use the routing-table entry whose prefix
  // is one digit longer.
  NodeId self(0xAAAA000000000000ULL, 0);
  SimpleNodeDirectory dir;
  PastryNode node(self, SmallConfig(), dir.view());
  NodeId leaf_a(0xAAAA000000000001ULL, 1);
  NodeId leaf_b(0xAAA9FFFFFFFFFFFFULL, 2);
  node.Learn(leaf_a);
  node.Learn(leaf_b);
  NodeId towards_b(0xB000000000000000ULL, 0);
  node.Learn(towards_b);

  NodeId key(0xB123456789ABCDEFULL, 0);
  auto hop = node.NextHop(key);
  ASSERT_TRUE(hop.has_value());
  EXPECT_EQ(*hop, towards_b);
}

TEST(PastryNodeTest, RareCaseUsesNumericallyCloserFallback) {
  // No routing-table entry for the key's digit; the node must fall back to
  // any known node with >= shared prefix that is numerically closer.
  NodeId self(0xA000000000000000ULL, 0);
  SimpleNodeDirectory dir;
  PastryNode node(self, SmallConfig(), dir.view());
  // A node sharing 0 digits but numerically closer to the key than we are.
  NodeId closer(0xC000000000000000ULL, 0);
  node.routing_table().Consider(closer);
  // Key with first digit 0xD: slot (0, 0xD) is empty; 0xC... is closer.
  NodeId key(0xD000000000000000ULL, 0);
  // Remove the direct entry to force the fallback: slot (0,0xC) holds
  // `closer`, while slot (0,0xD) is empty. Covers(key) is false (no leaves).
  auto hop = node.NextHop(key);
  ASSERT_TRUE(hop.has_value());
  EXPECT_EQ(*hop, closer);
}

TEST(PastryNodeTest, DeadLeafIsForgottenAndSkipped) {
  NodeId self(0, 1000);
  SimpleNodeDirectory dir;
  PastryNode node(self, SmallConfig(), dir.view());
  NodeId dead(0, 1100);
  NodeId live(0, 1200);
  node.Learn(dead);
  node.Learn(live);
  dir.SetAlive(dead, false);

  auto hop = node.NextHop(NodeId(0, 1101));
  ASSERT_TRUE(hop.has_value());
  EXPECT_EQ(*hop, live);
  EXPECT_FALSE(node.leaf_set().Contains(dead));
}

TEST(PastryNodeTest, DeadRoutingEntryFallsThrough) {
  NodeId self(0xA000000000000000ULL, 0);
  SimpleNodeDirectory dir;
  PastryNode node(self, SmallConfig(), dir.view());
  NodeId dead(0xB000000000000000ULL, 0);
  NodeId alt(0xB800000000000000ULL, 0);  // also digit 0xB... same slot; keep distinct slot
  node.routing_table().Consider(dead);
  node.neighborhood().Consider(alt);
  dir.SetAlive(dead, false);

  NodeId key(0xB000000000000001ULL, 0);
  auto hop = node.NextHop(key);
  // The dead entry is purged; the neighborhood's 0xB8 node shares 0 digits
  // with the key (0xB0 vs 0xB8 share one digit actually: digit0 = 0xB).
  ASSERT_TRUE(hop.has_value());
  EXPECT_EQ(*hop, alt);
  EXPECT_FALSE(node.routing_table().Get(0, 0xB).has_value() &&
               *node.routing_table().Get(0, 0xB) == dead);
}

TEST(PastryNodeTest, NeverForwardsFartherFromKey) {
  // Property: any hop returned is strictly numerically closer to the key
  // than this node (the loop-freedom invariant of section 2.3).
  Rng rng(250);
  NodeId self(rng.NextU64(), rng.NextU64());
  SimpleNodeDirectory dir;
  PastryNode node(self, SmallConfig(), dir.view());
  for (int i = 0; i < 200; ++i) {
    node.Learn(NodeId(rng.NextU64(), rng.NextU64()));
  }
  for (int i = 0; i < 500; ++i) {
    NodeId key(rng.NextU64(), rng.NextU64());
    auto hop = node.NextHop(key);
    if (hop) {
      EXPECT_TRUE(hop->CloserTo(key, self))
          << "hop " << hop->ToHex() << " not closer to " << key.ToHex();
    }
  }
}

TEST(PastryNodeTest, RandomizedHopsAreStillValid) {
  Rng rng(251);
  PastryConfig config = SmallConfig();
  config.route_randomization = 1.0;  // always pick a random valid candidate
  NodeId self(rng.NextU64(), rng.NextU64());
  SimpleNodeDirectory dir;
  PastryNode node(self, config, dir.view());
  for (int i = 0; i < 100; ++i) {
    node.Learn(NodeId(rng.NextU64(), rng.NextU64()));
  }
  for (int i = 0; i < 300; ++i) {
    NodeId key(rng.NextU64(), rng.NextU64());
    auto hop = node.NextHop(key, &rng);
    if (hop) {
      EXPECT_TRUE(hop->CloserTo(key, self));
      EXPECT_GE(hop->SharedPrefixLength(key, config.b), self.SharedPrefixLength(key, config.b));
    }
  }
}

TEST(PastryNodeTest, LearnAndForgetRoundTrip) {
  SimpleNodeDirectory dir;
  PastryNode node(NodeId(1, 1), SmallConfig(), dir.view());
  NodeId other(2, 2);
  node.Learn(other);
  EXPECT_TRUE(node.leaf_set().Contains(other));
  node.Forget(other);
  EXPECT_FALSE(node.leaf_set().Contains(other));
  EXPECT_TRUE(node.routing_table().Entries().empty());
  EXPECT_FALSE(node.neighborhood().Contains(other));
}

TEST(PastryNodeTest, LearnSelfIsNoop) {
  SimpleNodeDirectory dir;
  PastryNode node(NodeId(1, 1), SmallConfig(), dir.view());
  node.Learn(NodeId(1, 1));
  EXPECT_EQ(node.leaf_set().size(), 0u);
  EXPECT_EQ(node.routing_table().size(), 0u);
}

}  // namespace
}  // namespace past
