// Adversarial workload generators: reference streams deliberately shaped to
// stress the placement and caching policies where the calibrated web trace
// (trace_generator.h) is gentle. Each generator is a pure function of its
// config (seed included) — same config, same trace, byte for byte.
//
//  * Flash crowd — a tiny hot set absorbs most references inside a burst
//    window. Stresses cache admission (a single hot file must not evict the
//    whole cache) and rewards cooperative caching (neighbors share the one
//    copy instead of each fetching it).
//  * Diurnal swing — the active client region rotates sinusoidally, so the
//    request mix a node's cache was tuned to keeps moving away from it.
//  * Zipf drift — the popularity ranking rotates in phases; yesterday's hot
//    set goes cold, defeating caches that never re-evaluate.
//  * Regional failure — a correlated failure takes out one client cluster's
//    region mid-run: its requests stop and the driver fails the nodes
//    mapped to it (the trace records where; the driver injects the event).
#ifndef SRC_WORKLOAD_ADVERSARIAL_H_
#define SRC_WORKLOAD_ADVERSARIAL_H_

#include <cstddef>
#include <cstdint>

#include "src/workload/trace.h"

namespace past {

enum class AdversarialKind : uint8_t {
  kFlashCrowd,
  kDiurnal,
  kZipfDrift,
  kRegionalFailure,
};

// Short stable names for CLI flags and serialized configs:
// "flash" / "diurnal" / "drift" / "regional".
const char* AdversarialKindName(AdversarialKind kind);
// Returns false on an unknown name (kind is left untouched).
bool AdversarialKindFromName(const char* name, AdversarialKind* kind);

struct AdversarialConfig {
  AdversarialKind kind = AdversarialKind::kFlashCrowd;

  uint32_t catalog_size = 20000;
  uint64_t total_references = 200000;

  // File size calibration (same defaults as WebTraceConfig).
  uint64_t median_size = 1312;
  uint64_t mean_size = 10517;
  uint64_t max_size = 138ull * 1000 * 1000;
  double tail_fraction = 0.005;
  double tail_alpha = 1.05;

  // Baseline popularity and client model.
  double zipf_alpha = 0.8;
  uint32_t num_clients = 775;
  uint32_t num_clusters = 8;
  double cluster_affinity = 0.7;

  // Flash crowd: inside [flash_start, flash_end) of the stream, each
  // reference hits one of the `flash_hot_files` top-ranked files with
  // probability flash_intensity.
  uint32_t flash_hot_files = 4;
  double flash_start = 0.3;
  double flash_end = 0.7;
  double flash_intensity = 0.9;

  // Diurnal swing: the active cluster rotates through `diurnal_periods`
  // full cycles over the stream; at each instant the probability that a
  // request originates in the active cluster swings sinusoidally between
  // cluster_affinity (trough) and diurnal_peak_affinity (peak).
  double diurnal_periods = 4.0;
  double diurnal_peak_affinity = 0.95;

  // Zipf drift: the popularity ranking rotates by catalog_size/drift_phases
  // at each phase boundary, so the hot set is replaced wholesale
  // (drift_phases - 1) times over the stream.
  uint32_t drift_phases = 5;

  // Regional failure: at stream position failure_at, the `failed_cluster`'s
  // region dies — its clients issue no further requests, and the driver is
  // expected to fail the PAST nodes it maps to that region.
  uint32_t failed_cluster = 0;
  double failure_at = 0.5;

  uint64_t seed = 7;
};

struct AdversarialTrace {
  Trace trace;
  // Event index at which the driver should inject the correlated regional
  // failure; SIZE_MAX when the workload has no failure event.
  size_t failure_event_index = SIZE_MAX;
  uint32_t failed_cluster = 0;
};

AdversarialTrace GenerateAdversarialTrace(const AdversarialConfig& config);

}  // namespace past

#endif  // SRC_WORKLOAD_ADVERSARIAL_H_
