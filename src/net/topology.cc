#include "src/net/topology.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace past {

double TorusDistance(const Coordinate& a, const Coordinate& b) {
  double dx = std::fabs(a.x - b.x);
  double dy = std::fabs(a.y - b.y);
  dx = std::min(dx, 1.0 - dx);
  dy = std::min(dy, 1.0 - dy);
  return std::sqrt(dx * dx + dy * dy);
}

Topology::Topology(uint64_t seed) : rng_(seed) {}

Coordinate Topology::PlaceUniform(const NodeId& id) {
  Coordinate c{rng_.NextDouble(), rng_.NextDouble()};
  locations_[id] = c;
  return c;
}

Coordinate Topology::PlaceNear(const NodeId& id, const Coordinate& center, double spread) {
  auto wrap = [](double v) {
    v = std::fmod(v, 1.0);
    if (v < 0.0) {
      v += 1.0;
    }
    return v;
  };
  Coordinate c{wrap(center.x + spread * rng_.NextGaussian()),
               wrap(center.y + spread * rng_.NextGaussian())};
  locations_[id] = c;
  return c;
}

void Topology::Remove(const NodeId& id) { locations_.erase(id); }

bool Topology::Contains(const NodeId& id) const { return locations_.count(id) > 0; }

const Coordinate& Topology::LocationOf(const NodeId& id) const {
  auto it = locations_.find(id);
  if (it == locations_.end()) {
    throw std::out_of_range("Topology::LocationOf: unknown node " + id.ToHex());
  }
  return it->second;
}

double Topology::Distance(const NodeId& a, const NodeId& b) const {
  return TorusDistance(LocationOf(a), LocationOf(b));
}

NodeId Topology::NearestTo(const Coordinate& point) const {
  NodeId best;
  double best_distance = std::numeric_limits<double>::infinity();
  for (const auto& [id, location] : locations_) {
    double d = TorusDistance(point, location);
    if (d < best_distance) {
      best_distance = d;
      best = id;
    }
  }
  return best;
}

}  // namespace past
