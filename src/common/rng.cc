#include "src/common/rng.h"

#include <cmath>

namespace past {
namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) {
    word = SplitMix64(&s);
  }
}

uint64_t Rng::NextU64() {
  uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  if (bound <= 1) {
    return 0;
  }
  // Rejection sampling: accept values below the largest multiple of bound.
  uint64_t limit = ~0ULL - (~0ULL % bound);
  uint64_t v;
  do {
    v = NextU64();
  } while (v >= limit);
  return v % bound;
}

double Rng::NextDouble() {
  // 53 uniform mantissa bits.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::NextGaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  have_cached_gaussian_ = true;
  return u * factor;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace past
