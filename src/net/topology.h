// Emulated network topology and proximity metric.
//
// The paper runs all 2250 nodes in one process over a network emulation layer
// and measures fetch distance in Pastry routing hops; Pastry's locality
// heuristics need a scalar proximity metric between any two nodes (IP hops,
// geographic distance, ...). We model endpoints as points on a 2-D unit
// torus: distance is Euclidean with wrap-around, which gives a well-behaved
// metric with no edge effects. Geographic client clustering (the 8 NLANR
// proxy sites) is modeled by placing cluster centers and sampling member
// coordinates around them.
#ifndef SRC_NET_TOPOLOGY_H_
#define SRC_NET_TOPOLOGY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/node_id.h"
#include "src/common/rng.h"

namespace past {

struct Coordinate {
  double x = 0.0;
  double y = 0.0;
};

// Euclidean distance on the unit torus.
double TorusDistance(const Coordinate& a, const Coordinate& b);

class Topology {
 public:
  explicit Topology(uint64_t seed);

  // Registers an endpoint at a uniformly random location.
  Coordinate PlaceUniform(const NodeId& id);

  // Registers an endpoint clustered around `center` with Gaussian spread.
  Coordinate PlaceNear(const NodeId& id, const Coordinate& center, double spread);

  void Remove(const NodeId& id);

  bool Contains(const NodeId& id) const;
  const Coordinate& LocationOf(const NodeId& id) const;

  // Proximity metric between two registered endpoints.
  double Distance(const NodeId& a, const NodeId& b) const;

  // The registered endpoint closest to `point` (linear scan; used when
  // mapping trace clients onto nodes, not on routing paths).
  NodeId NearestTo(const Coordinate& point) const;

  size_t size() const { return locations_.size(); }

 private:
  Rng rng_;
  std::unordered_map<NodeId, Coordinate, NodeIdHash> locations_;
};

}  // namespace past

#endif  // SRC_NET_TOPOLOGY_H_
