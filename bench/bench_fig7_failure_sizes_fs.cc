// Reproduces Figure 7: failed insertions by file size versus utilization for
// the filesystem workload (heavier-tailed sizes; the paper scales node
// capacities up 10x for this trace — our harness auto-scales capacity to the
// same demand factor).
//
// Paper shape: same qualitative pattern as Figure 6 with the size axis
// stretched (mean 88 KB): failures biased to very large files, tiny overall
// failure ratio until very high utilization.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace past;
  BenchStopwatch stopwatch;
  CommandLine cli(argc, argv);
  ExperimentConfig config = BenchConfig(cli);
  config.workload = WorkloadKind::kFilesystem;
  if (cli.Has("--paper-scale")) {
    config.catalog_size = 2027908;  // the paper's filesystem scan size
  }
  PrintHeader("Figure 7: failed insertions by size vs utilization (filesystem workload)",
              config);

  ExperimentResult r = RunExperiment(config);

  std::printf("## scatter: utilization,failed_file_size\n");
  for (const FailureRecord& f : r.failures) {
    std::printf("%.4f,%llu\n", f.utilization, static_cast<unsigned long long>(f.size));
  }
  std::printf("## curve: utilization,failure_ratio\n");
  for (const CurveSample& s : r.curve) {
    std::printf("%.4f,%.6f\n", s.utilization, s.cumulative_failure_ratio);
  }
  std::printf("\n# mean file size: %.0f bytes; final failure ratio %.4f at util %.4f\n",
              r.mean_file_size, r.failure_ratio, r.final_utilization);
  std::printf("# paper: failure ratio stays below 0.01 for most of the run despite the\n"
              "# much heavier file-size tail.\n");
  PrintBenchFooter(stopwatch);
  return 0;
}
