// Pastry neighborhood set: the M nodes closest to the owner according to the
// proximity metric (paper section 2.1). Not used in routing; it seeds
// locality-aware state during node addition.
//
// Members are stored as interned directory indices in a fixed inline array
// (M = 32 in the paper's evaluation) — 4 bytes per member instead of a
// 16-byte id in a heap vector. Ids and distances are resolved through the
// NodeDirectory on the cold paths that need them.
#ifndef SRC_PASTRY_NEIGHBORHOOD_SET_H_
#define SRC_PASTRY_NEIGHBORHOOD_SET_H_

#include <memory>
#include <vector>

#include "src/common/node_id.h"
#include "src/pastry/directory.h"

namespace past {

class NeighborhoodSet {
 public:
  static constexpr int kInlineCapacity = 32;

  // `dir` must be non-null: it owns the id <-> index mapping and the
  // proximity metric (dir->distance may be null: all nodes equidistant,
  // giving insertion order).
  NeighborhoodSet(const NodeId& owner, int capacity, const NodeDirectory* dir);

  // Considers `id`; keeps the `capacity` proximally closest nodes.
  bool Consider(const NodeId& id);
  bool Remove(const NodeId& id);
  bool Contains(const NodeId& id) const;

  size_t size() const { return static_cast<size_t>(count_); }

  // Member i by increasing proximity distance.
  const NodeId& member(size_t i) const { return dir_->resolve(dir_->ctx, data()[i]); }
  uint32_t member_index(size_t i) const { return data()[i]; }

  // Materialized member ids (cold paths: joins, dumps, tests).
  std::vector<NodeId> members() const;

 private:
  double DistanceTo(const NodeId& n) const {
    return dir_->distance != nullptr ? dir_->distance(dir_->ctx, owner_, n) : 0.0;
  }
  uint32_t* data() { return spill_ ? spill_->data() : inline_idx_; }
  const uint32_t* data() const { return spill_ ? spill_->data() : inline_idx_; }

  NodeId owner_;
  const NodeDirectory* dir_;
  int capacity_;
  int count_ = 0;
  uint32_t inline_idx_[kInlineCapacity];
  std::unique_ptr<std::vector<uint32_t>> spill_;  // capacity_ > kInlineCapacity
};

}  // namespace past

#endif  // SRC_PASTRY_NEIGHBORHOOD_SET_H_
