// CacheTier: one layer of the lookup cache chain.
//
// The lookup path consults an ordered chain of tiers before falling back to
// the replica holders. Two kinds of tier exist:
//
//  * Route-side tiers answer ServesAt(): can the file be served from cache
//    at this node, right now? The classic per-node GD-S/LRU cache
//    (LocalCacheTier) is this kind; the routing stop predicate asks every
//    tier at every hop.
//
//  * Brokered tiers answer ProbeTarget()/ResolveProbe(): before routing at
//    all, the origin sends one kCacheProbe to a broker node (picked by
//    ProbeTarget), which resolves it against its directory shard — the
//    cooperative tier modeled on fs123's distrib_cache_backend.
//
// Determinism rules: tier answers must be pure functions of simulation
// state (stores, caches, directory, membership) — no wall clock, no
// un-seeded randomness — so runs replay bit-identically. A tier must never
// fabricate a hit: a stale answer is surfaced by the fetch failing at the
// holder and must degrade to a clean miss, never a wrong read.
#ifndef SRC_CACHE_CACHE_TIER_H_
#define SRC_CACHE_CACHE_TIER_H_

#include <optional>

#include "src/common/file_id.h"
#include "src/common/node_id.h"

namespace past {

class CacheTier {
 public:
  virtual ~CacheTier() = default;

  virtual const char* name() const = 0;

  // True if this tier can serve `file` at `node` right now. Called from the
  // routing stop predicate; may record hit/miss tallies.
  virtual bool ServesAt(const NodeId& node, const FileId& file) = 0;

  // For brokered tiers: the broker `origin` should probe for this file, or
  // nullopt if this tier does not broker (or no broker is reachable).
  virtual std::optional<NodeId> ProbeTarget(const NodeId& origin, const FileId& file) = 0;

  // At the broker: resolve a probe to a holder node, or nullopt for a miss.
  virtual std::optional<NodeId> ResolveProbe(const NodeId& broker, const FileId& file) = 0;
};

}  // namespace past

#endif  // SRC_CACHE_CACHE_TIER_H_
