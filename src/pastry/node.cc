#include "src/pastry/node.h"

#include <algorithm>

namespace past {

PastryNode::PastryNode(const NodeId& id, const PastryConfig& config, ProximityFn proximity)
    : id_(id),
      config_(config),
      routing_table_(id, config.b, proximity),
      leaf_set_(id, config.leaf_set_size / 2),
      neighborhood_(id, config.neighborhood_size, proximity) {}

void PastryNode::Learn(const NodeId& other) {
  if (other == id_) {
    return;
  }
  leaf_set_.Insert(other);
  routing_table_.Consider(other);
  neighborhood_.Consider(other);
}

void PastryNode::Forget(const NodeId& other) {
  leaf_set_.Remove(other);
  routing_table_.Remove(other);
  neighborhood_.Remove(other);
}

NodeId PastryNode::ClosestAliveLeaf(const NodeId& key, const AliveFn& alive,
                                    std::vector<NodeId>* deferred_dead) {
  // Scans the two side vectors in place instead of materializing All():
  // this runs on every final routing hop. Overlapping sides (small networks)
  // just scan a member twice, which cannot change the arg-min; `dead` stays
  // unallocated unless a failed member is actually seen.
  NodeId best = id_;
  std::vector<NodeId> dead;
  auto scan = [&](const std::vector<NodeId>& side) {
    for (const NodeId& member : side) {
      if (!alive(member)) {
        (deferred_dead != nullptr ? *deferred_dead : dead).push_back(member);
        continue;
      }
      if (member.CloserTo(key, best)) {
        best = member;
      }
    }
  };
  scan(leaf_set_.larger());
  scan(leaf_set_.smaller());
  for (const NodeId& d : dead) {
    Forget(d);
  }
  return best;
}

std::vector<NodeId> PastryNode::ValidCandidates(const NodeId& key, const AliveFn& alive) {
  int my_prefix = id_.SharedPrefixLength(key, config_.b);
  std::vector<NodeId> candidates;
  auto consider = [&](const NodeId& c) {
    if (c == id_ || !alive(c)) {
      return;
    }
    if (c.SharedPrefixLength(key, config_.b) >= my_prefix && c.CloserTo(key, id_) &&
        std::find(candidates.begin(), candidates.end(), c) == candidates.end()) {
      candidates.push_back(c);
    }
  };
  for (const NodeId& c : leaf_set_.All()) {
    consider(c);
  }
  for (const NodeId& c : routing_table_.Entries()) {
    consider(c);
  }
  for (const NodeId& c : neighborhood_.members()) {
    consider(c);
  }
  return candidates;
}

std::optional<NodeId> PastryNode::NextHop(const NodeId& key, const AliveFn& alive, Rng* rng,
                                          std::vector<NodeId>* deferred_dead) {
  // Randomized routing (paper section 2.3): occasionally pick any valid
  // choice to route around malicious or silently failed nodes on the path.
  if (rng != nullptr && config_.route_randomization > 0.0 &&
      rng->NextBool(config_.route_randomization)) {
    std::vector<NodeId> candidates = ValidCandidates(key, alive);
    if (!candidates.empty()) {
      return candidates[rng->NextBelow(candidates.size())];
    }
    return std::nullopt;
  }

  // Case 1: key is within the leaf set's range; deliver to the numerically
  // closest member (possibly ourselves).
  if (leaf_set_.Covers(key)) {
    NodeId best = ClosestAliveLeaf(key, alive, deferred_dead);
    if (best == id_) {
      return std::nullopt;
    }
    return best;
  }

  // Case 2: forward to a routing table entry with a longer shared prefix.
  int my_prefix = id_.SharedPrefixLength(key, config_.b);
  int next_digit = key.Digit(my_prefix, config_.b);
  if (auto entry = routing_table_.Get(my_prefix, next_digit)) {
    if (alive(*entry)) {
      return *entry;
    }
    if (deferred_dead != nullptr) {
      deferred_dead->push_back(*entry);
    } else {
      Forget(*entry);
    }
  }

  // Case 3 (rare): no such entry; forward to any known node sharing at least
  // as long a prefix that is numerically closer to the key than we are.
  std::vector<NodeId> candidates = ValidCandidates(key, alive);
  if (candidates.empty()) {
    return std::nullopt;  // we are (as far as we know) the closest node
  }
  NodeId best = candidates.front();
  for (const NodeId& c : candidates) {
    // Prefer a longer prefix match, then closer ring distance.
    int best_prefix = best.SharedPrefixLength(key, config_.b);
    int c_prefix = c.SharedPrefixLength(key, config_.b);
    if (c_prefix > best_prefix || (c_prefix == best_prefix && c.CloserTo(key, best))) {
      best = c;
    }
  }
  return best;
}

}  // namespace past
