#include "src/workload/trace_generator.h"

#include "src/common/distributions.h"

namespace past {
namespace {

// Uniform client within a contiguous cluster block.
uint32_t ClientInCluster(uint32_t cluster, uint32_t num_clients, uint32_t num_clusters,
                         Rng& rng) {
  uint32_t begin = cluster * num_clients / num_clusters;
  uint32_t end = (cluster + 1) * num_clients / num_clusters;
  if (end <= begin) {
    end = begin + 1;
  }
  return begin + static_cast<uint32_t>(rng.NextBelow(end - begin));
}

}  // namespace

Trace GenerateWebTrace(const WebTraceConfig& config) {
  Rng rng(config.seed);
  Trace trace;
  trace.num_clients = config.num_clients;
  trace.num_clusters = config.num_clusters;

  FileSizeDistribution size_dist(config.median_size, config.mean_size, config.tail_fraction,
                                 config.tail_alpha, config.max_size);
  trace.file_sizes.reserve(config.catalog_size);
  for (uint32_t i = 0; i < config.catalog_size; ++i) {
    trace.file_sizes.push_back(size_dist.Sample(rng));
  }

  if (config.total_references == 0) {
    // Insert-only stream: the storage experiments use the first appearance
    // of each URL and ignore repeats, which reduces to one insert per file.
    trace.events.reserve(config.catalog_size);
    for (uint32_t i = 0; i < config.catalog_size; ++i) {
      uint32_t client = static_cast<uint32_t>(rng.NextBelow(config.num_clients));
      trace.events.push_back({TraceOp::kInsert, i, client});
    }
    return trace;
  }

  // Full reference stream: Zipf popularity; first reference inserts.
  Zipf popularity(config.catalog_size, config.zipf_alpha);
  std::vector<bool> seen(config.catalog_size, false);
  std::vector<uint32_t> home_cluster(config.catalog_size, 0);
  trace.events.reserve(config.total_references);
  for (uint64_t r = 0; r < config.total_references; ++r) {
    uint32_t f = static_cast<uint32_t>(popularity.Sample(rng));
    if (!seen[f]) {
      seen[f] = true;
      uint32_t client = static_cast<uint32_t>(rng.NextBelow(config.num_clients));
      home_cluster[f] = trace.ClusterOf(client);
      trace.events.push_back({TraceOp::kInsert, f, client});
    } else {
      uint32_t client;
      if (rng.NextBool(config.cluster_affinity)) {
        client = ClientInCluster(home_cluster[f], config.num_clients, config.num_clusters, rng);
      } else {
        client = static_cast<uint32_t>(rng.NextBelow(config.num_clients));
      }
      trace.events.push_back({TraceOp::kLookup, f, client});
    }
  }
  return trace;
}

Trace GenerateFilesystemTrace(const FilesystemTraceConfig& config) {
  Rng rng(config.seed);
  Trace trace;
  trace.num_clients = config.num_clients;
  trace.num_clusters = config.num_clusters;

  FileSizeDistribution size_dist(config.median_size, config.mean_size, config.tail_fraction,
                                 config.tail_alpha, config.max_size);
  trace.file_sizes.reserve(config.catalog_size);
  trace.events.reserve(config.catalog_size);
  for (uint32_t i = 0; i < config.catalog_size; ++i) {
    trace.file_sizes.push_back(size_dist.Sample(rng));
    uint32_t client = static_cast<uint32_t>(rng.NextBelow(config.num_clients));
    trace.events.push_back({TraceOp::kInsert, i, client});
  }
  return trace;
}

}  // namespace past
