#include "src/past/ops/repair_op.h"

#include <algorithm>
#include <optional>
#include <unordered_set>
#include <utility>

namespace past {

void RepairOp::SendSettled(Exchange& ex, const Message& msg,
                           const std::function<void(const Delivery&)>& handler) {
  ex.Reset(0);
  ++messages_;
  // The exchange lives in the caller's frame; Settle() returns only after
  // every copy of `msg` was delivered or dropped, so the capture by
  // reference is safe — the same contract the stack-frame booleans of the
  // settle-era coordinators relied on, now carried by the Exchange type.
  transport_.Send(msg, [&ex, &handler](const Delivery& d) {
    if (ex.completed_) {
      return;  // duplicate delivery
    }
    ex.completed_ = true;
    if (handler) {
      handler(d);
    }
  });
  transport_.Settle();
}

void RepairOp::RestoreInvariants(const std::vector<NodeId>& region) {
  std::unordered_set<FileId, FileIdHash> files;
  for (const NodeId& id : region) {
    const PastNode* pn = net_.storage_node(id);
    if (pn == nullptr) {
      continue;
    }
    for (const auto& [f, entry] : pn->store().replicas()) {
      (void)entry;
      files.insert(f);
    }
    for (const auto& [f, ptr] : pn->store().pointers()) {
      (void)ptr;
      files.insert(f);
    }
  }
  for (const FileId& f : files) {
    RepairFile(f);
  }
}

void RepairOp::RepairFile(const FileId& file_id) {
  NodeId key = file_id.ToRoutingKey();
  NodeId root = net_.pastry_.ClosestLive(key);
  const PastryNode* root_node = net_.pastry_.node(root);
  if (root_node == nullptr) {
    return;
  }
  std::vector<NodeId> k_closest = net_.KClosestFromLeafSet(root, key, net_.config_.k);

  // Discover live replica holders in the neighborhood: the k closest, the
  // root's wider leaf set (nodes that recently ceased to be among the k
  // closest may still hold replicas), and pointer targets.
  std::vector<NodeId> holders;
  auto add_holder = [&](const NodeId& n) {
    if (!net_.pastry_.IsAlive(n)) {
      return;
    }
    const PastNode* pn = net_.storage_node(n);
    if (pn != nullptr && pn->store().HasReplica(file_id) &&
        std::find(holders.begin(), holders.end(), n) == holders.end()) {
      holders.push_back(n);
    }
  };
  for (const NodeId& n : k_closest) {
    add_holder(n);
  }
  for (const NodeId& n : root_node->leaf_set().All()) {
    add_holder(n);
  }
  for (const NodeId& n : k_closest) {
    const PastNode* pn = net_.storage_node(n);
    if (pn != nullptr) {
      const DiversionPointer* ptr = pn->store().GetPointer(file_id);
      if (ptr != nullptr) {
        add_holder(ptr->holder);
      }
    }
  }

  if (holders.empty()) {
    // All k replicas (and any diverted copies) vanished inside one recovery
    // period — the file is lost. Drop dangling pointers.
    net_.ins_.files_lost->Inc();
    obs::OpTrace lost;
    lost.kind = obs::TraceOpKind::kMaintenance;
    lost.file_id = file_id.ToHex();
    lost.status = "file_lost";
    net_.EmitTrace(std::move(lost));
    for (const NodeId& n : k_closest) {
      PastNode* pn = net_.storage_node(n);
      if (pn != nullptr) {
        pn->store().RemovePointer(file_id);
      }
    }
    return;
  }

  const NodeStore& sample_store = net_.storage_node(holders.front())->store();
  const ReplicaEntry* sample = sample_store.GetReplica(file_id);
  uint64_t size = sample->size;
  FileCertificateRef certificate = sample_store.GetCertificate(file_id);
  FileContentRef content = sample_store.GetContent(file_id);
  // The holder that pushes replica data to repair targets.
  NodeId source = holders.front();

  // Pushes the replica from `source` to `t` as a primary copy; returns true
  // if `t` accepted and stored it (false on decline or a dropped message).
  auto push_replica = [&](const NodeId& t) {
    bool stored = false;
    Exchange push_ex;
    SendSettled(push_ex,
                Direct(MessageType::kRepairStore, source, t, file_id, size, MessageCost::kNone),
                [&, t](const Delivery&) {
                  PastNode* pn = net_.storage_node(t);
                  if (pn != nullptr && pn->WouldAcceptPrimary(size) &&
                      pn->StoreReplica(file_id, ReplicaKind::kPrimary, size, certificate,
                                       content)) {
                    if (!pn->store().Commit()) {
                      pn->RemoveReplica(file_id);  // un-committable: decline
                      return;
                    }
                    net_.total_stored_ += size;
                    net_.ins_.replicas_stored->Add(1);
                    net_.ins_.replicas_recreated->Inc();
                    stored = true;
                  }
                });
    return stored;
  };

  // Instructs `t` to install a diversion pointer at `target`.
  auto install_pointer = [&](const NodeId& t, const NodeId& target, bool count_metric) {
    Exchange ptr_ex;
    SendSettled(ptr_ex,
                Direct(MessageType::kRepairPointer, root, t, file_id, 0, MessageCost::kNone),
                [&, t, target, count_metric](const Delivery&) {
                  PastNode* pn = net_.storage_node(t);
                  if (pn != nullptr) {
                    pn->store().InstallPointer(file_id, target, PointerRole::kDiverter, size);
                    if (!pn->store().Commit()) {
                      pn->store().RemovePointer(file_id);
                      return;
                    }
                    if (count_metric) {
                      net_.ins_.maintenance_pointers->Inc();
                    }
                  }
                });
  };

  // Pass 1: every one of the k closest must hold the replica or a valid
  // pointer to a live holder.
  for (const NodeId& t : k_closest) {
    PastNode* pn = net_.storage_node(t);
    if (pn == nullptr) {
      continue;
    }
    if (pn->store().HasReplica(file_id)) {
      continue;
    }
    const DiversionPointer* ptr = pn->store().GetPointer(file_id);
    if (ptr != nullptr) {
      bool valid = net_.pastry_.IsAlive(ptr->holder) &&
                   net_.storage_node(ptr->holder) != nullptr &&
                   net_.storage_node(ptr->holder)->store().HasReplica(file_id);
      if (valid) {
        continue;
      }
      pn->store().RemovePointer(file_id);
    }
    // Prefer acquiring a real replica; otherwise install a pointer to an
    // existing holder (semantically identical to replica diversion, paper
    // section 3.5: the joining node installs a pointer and migrates later).
    if (push_replica(t)) {
      if (std::find(holders.begin(), holders.end(), t) == holders.end()) {
        holders.push_back(t);
      }
      continue;
    }
    // Point at a holder outside the k closest if possible (that holder plays
    // the diverted-replica role), else at any holder.
    NodeId target = holders.front();
    for (const NodeId& h : holders) {
      if (std::find(k_closest.begin(), k_closest.end(), h) == k_closest.end()) {
        target = h;
        break;
      }
    }
    install_pointer(t, target, /*count_metric=*/true);
  }

  // Pass 2: restore the replication level to k when space allows. First try
  // k-closest members without a replica, then diversion into their leaf sets.
  uint32_t live = static_cast<uint32_t>(holders.size());
  if (live >= net_.config_.k) {
    return;
  }
  for (const NodeId& t : k_closest) {
    if (live >= net_.config_.k) {
      break;
    }
    PastNode* pn = net_.storage_node(t);
    if (pn == nullptr || pn->store().HasReplica(file_id)) {
      continue;
    }
    if (push_replica(t)) {
      PastNode* stored_node = net_.storage_node(t);
      if (stored_node != nullptr) {
        stored_node->store().RemovePointer(file_id);
      }
      ++live;
      holders.push_back(t);
    }
  }
  for (const NodeId& t : k_closest) {
    if (live >= net_.config_.k) {
      break;
    }
    PastNode* pn = net_.storage_node(t);
    if (pn == nullptr || pn->store().HasReplica(file_id)) {
      continue;
    }
    std::optional<NodeId> target = net_.ChooseDiversionTarget(t, k_closest, file_id, size);
    if (!target) {
      continue;
    }
    // Diverted re-creation: push the data to the leaf-set member, then have
    // the k-closest node point at it.
    bool stored_at_b = false;
    Exchange divert_ex;
    SendSettled(divert_ex,
                Direct(MessageType::kRepairStore, source, *target, file_id, size,
                       MessageCost::kNone),
                [&](const Delivery&) {
                  PastNode* b = net_.storage_node(*target);
                  if (b != nullptr && b->WouldAcceptDiverted(size) &&
                      b->StoreReplica(file_id, ReplicaKind::kDiverted, size, certificate,
                                      content)) {
                    if (!b->store().Commit()) {
                      b->RemoveReplica(file_id);
                      return;
                    }
                    net_.total_stored_ += size;
                    net_.ins_.replicas_stored->Add(1);
                    net_.ins_.replicas_diverted->Add(1);
                    net_.ins_.replicas_recreated->Inc();
                    stored_at_b = true;
                  }
                });
    if (!stored_at_b) {
      continue;
    }
    install_pointer(t, *target, /*count_metric=*/false);
    ++live;
    holders.push_back(*target);
  }
}

}  // namespace past
