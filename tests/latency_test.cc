// LatencyModel unit tests (section 5.2's absolute datapoint).
#include <gtest/gtest.h>

#include "src/net/latency_model.h"

namespace past {
namespace {

TEST(LatencyModelTest, PaperDatapoint) {
  // 1 KB file, one hop away, LAN: ~25 ms.
  LatencyModel lan = LatencyModel::Lan();
  double ms = lan.FetchLatencyMs(1, 0.0, 1024);
  EXPECT_GT(ms, 20.0);
  EXPECT_LT(ms, 30.0);
}

TEST(LatencyModelTest, ZeroHopIsTransferOnly) {
  LatencyModel lan = LatencyModel::Lan();
  EXPECT_DOUBLE_EQ(lan.FetchLatencyMs(0, 0.0, 0), 0.0);
  EXPECT_DOUBLE_EQ(lan.FetchLatencyMs(0, 0.0, 12500), 10.0);
}

TEST(LatencyModelTest, LatencyIncreasesWithHopsDistanceAndSize) {
  LatencyModel wan = LatencyModel::Wan();
  double base = wan.FetchLatencyMs(2, 0.5, 1024);
  EXPECT_GT(wan.FetchLatencyMs(3, 0.5, 1024), base);
  EXPECT_GT(wan.FetchLatencyMs(2, 0.9, 1024), base);
  EXPECT_GT(wan.FetchLatencyMs(2, 0.5, 1 << 20), base);
}

TEST(LatencyModelTest, WanChargesPropagation) {
  LatencyModel lan = LatencyModel::Lan();
  LatencyModel wan = LatencyModel::Wan();
  // Same route, nonzero distance: WAN pays the propagation term, LAN not.
  EXPECT_DOUBLE_EQ(lan.FetchLatencyMs(1, 0.7, 0) - lan.FetchLatencyMs(1, 0.0, 0), 0.0);
  EXPECT_GT(wan.FetchLatencyMs(1, 0.7, 0), wan.FetchLatencyMs(1, 0.0, 0));
}

}  // namespace
}  // namespace past
