#include "src/pastry/keepalive.h"

namespace past {

KeepAliveDriver::KeepAliveDriver(EventQueue& queue, PastryNetwork& network, SimTime period)
    : queue_(queue), network_(network), period_(period) {
  ScheduleNext();
}

KeepAliveDriver::~KeepAliveDriver() { Stop(); }

void KeepAliveDriver::Stop() {
  if (!stopped_) {
    stopped_ = true;
    if (pending_event_ != 0) {
      queue_.Cancel(pending_event_);
      pending_event_ = 0;
    }
  }
}

void KeepAliveDriver::ScheduleNext() {
  pending_event_ = queue_.ScheduleAfter(period_, [this] { RunRound(); });
}

void KeepAliveDriver::RunRound() {
  if (stopped_) {
    return;
  }
  ++rounds_run_;
  failures_detected_ += network_.DetectAndRepair();
  ScheduleNext();
}

}  // namespace past
