// Erasure-coded storage on PAST (paper section 3.6 extension).
#include <gtest/gtest.h>

#include "src/harness/experiment.h"
#include "src/past/fragmented.h"

namespace past {
namespace {

class FragmentedStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PastConfig config;
    config.k = 2;  // the erasure code supplies the redundancy
    config.enable_maintenance = false;
    deployment_ = BuildDeployment(60, 10'000'000, config, 210);
    client_ = std::make_unique<PastClient>(*deployment_.network, deployment_.node_ids[0],
                                           1ull << 45, 211);
  }

  std::string MakeContent(size_t size) {
    std::string content(size, '\0');
    Rng rng(212);
    for (auto& c : content) {
      c = static_cast<char>(rng.NextBelow(256));
    }
    return content;
  }

  TestDeployment deployment_;
  std::unique_ptr<PastClient> client_;
};

TEST_F(FragmentedStoreTest, InsertAndRetrieveRoundTrip) {
  FragmentedStore store(*client_, /*data=*/5, /*parity=*/3);
  std::string content = MakeContent(40000);
  auto manifest = store.Insert("video.mpg", content);
  ASSERT_TRUE(manifest.has_value());
  EXPECT_EQ(manifest->fragments.size(), 8u);

  FragmentedRetrieveResult r = store.Retrieve(*manifest);
  ASSERT_TRUE(r.reconstructed);
  EXPECT_EQ(r.content, content);
  EXPECT_EQ(r.fragments_fetched, 5);
  EXPECT_EQ(r.fragments_missing, 0);
}

TEST_F(FragmentedStoreTest, SurvivesLossOfParityManyFragments) {
  FragmentedStore store(*client_, 5, 3);
  std::string content = MakeContent(20000);
  auto manifest = store.Insert("resilient.dat", content);
  ASSERT_TRUE(manifest.has_value());

  // Reclaim (destroy) 3 fragments — the tolerance limit.
  for (int i = 0; i < 3; ++i) {
    client_->Reclaim(manifest->fragments[static_cast<size_t>(i)]);
  }
  FragmentedRetrieveResult r = store.Retrieve(*manifest);
  ASSERT_TRUE(r.reconstructed);
  EXPECT_EQ(r.content, content);
  EXPECT_EQ(r.fragments_missing, 3);
}

TEST_F(FragmentedStoreTest, FailsBeyondTolerance) {
  FragmentedStore store(*client_, 4, 2);
  std::string content = MakeContent(10000);
  auto manifest = store.Insert("fragile.dat", content);
  ASSERT_TRUE(manifest.has_value());
  for (int i = 0; i < 3; ++i) {  // one more than m = 2
    client_->Reclaim(manifest->fragments[static_cast<size_t>(i)]);
  }
  FragmentedRetrieveResult r = store.Retrieve(*manifest);
  EXPECT_FALSE(r.reconstructed);
  EXPECT_EQ(r.fragments_missing, 3);
}

TEST_F(FragmentedStoreTest, ReclaimFreesAllFragments) {
  FragmentedStore store(*client_, 4, 2);
  auto manifest = store.Insert("temp.dat", MakeContent(5000));
  ASSERT_TRUE(manifest.has_value());
  double util_before = deployment_.network->utilization();
  EXPECT_GT(util_before, 0.0);
  store.Reclaim(*manifest);
  EXPECT_LT(deployment_.network->utilization(), util_before);
  FragmentedRetrieveResult r = store.Retrieve(*manifest);
  EXPECT_FALSE(r.reconstructed);
}

TEST_F(FragmentedStoreTest, StorageOverheadBeatsReplication) {
  FragmentedStore store(*client_, 8, 4);
  // RS(8,4) with k=2 fragments: 1.5 * 2 = 3x, tolerating 4 fragment losses;
  // plain k=5 replication costs 5x tolerating 4 node losses.
  EXPECT_DOUBLE_EQ(store.StorageOverhead(2), 3.0);
  EXPECT_LT(store.StorageOverhead(2), 5.0);
}

TEST_F(FragmentedStoreTest, EmptyFileRoundTrips) {
  FragmentedStore store(*client_, 3, 2);
  auto manifest = store.Insert("empty.txt", "");
  ASSERT_TRUE(manifest.has_value());
  FragmentedRetrieveResult r = store.Retrieve(*manifest);
  ASSERT_TRUE(r.reconstructed);
  EXPECT_EQ(r.content, "");
}

TEST_F(FragmentedStoreTest, SurvivesNodeFailuresWithoutMaintenance) {
  // Even with replica maintenance off and k=2, the erasure coding rides out
  // node failures as long as <= m fragments lose both replicas.
  FragmentedStore store(*client_, 5, 3);
  std::string content = MakeContent(30000);
  auto manifest = store.Insert("hardy.dat", content);
  ASSERT_TRUE(manifest.has_value());

  // Fail a handful of nodes.
  PastNetwork& network = *deployment_.network;
  Rng rng(213);
  for (int i = 0; i < 6; ++i) {
    std::vector<NodeId> live = network.overlay().live_nodes();
    network.FailStorageNode(live[rng.NextBelow(live.size())]);
  }
  FragmentedRetrieveResult r = store.Retrieve(*manifest);
  if (r.reconstructed) {
    EXPECT_EQ(r.content, content);
  } else {
    EXPECT_GT(r.fragments_missing, 3);
  }
}

}  // namespace
}  // namespace past
