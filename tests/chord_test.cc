// Chord substrate tests: interval arithmetic, lookup correctness against the
// ring oracle, logarithmic hops, churn repair.
#include <gtest/gtest.h>

#include <cmath>

#include "src/chord/chord_network.h"
#include "src/common/rng.h"

namespace past {
namespace {

NodeId Id(uint64_t v) { return NodeId(0, v); }

TEST(ChordIntervalTest, HalfOpenSemantics) {
  EXPECT_TRUE(ChordNode::InInterval(Id(5), Id(1), Id(10)));
  EXPECT_TRUE(ChordNode::InInterval(Id(10), Id(1), Id(10)));   // inclusive right
  EXPECT_FALSE(ChordNode::InInterval(Id(1), Id(1), Id(10)));   // exclusive left
  EXPECT_FALSE(ChordNode::InInterval(Id(11), Id(1), Id(10)));
}

TEST(ChordIntervalTest, WrapsAroundRing) {
  NodeId high(~0ULL, ~0ULL - 5);
  NodeId low(0, 5);
  EXPECT_TRUE(ChordNode::InInterval(Id(1), high, low));
  EXPECT_TRUE(ChordNode::InInterval(NodeId(~0ULL, ~0ULL), high, low));
  EXPECT_FALSE(ChordNode::InInterval(Id(100), high, low));
  // Degenerate full-circle interval.
  EXPECT_TRUE(ChordNode::InInterval(Id(42), Id(7), Id(7)));
}

TEST(ChordNodeTest, FingerStartsDouble) {
  ChordNode node(Id(0), 4);
  EXPECT_EQ(node.FingerStart(0), Id(1));
  EXPECT_EQ(node.FingerStart(10), Id(1024));
  // Wraparound at the top bit.
  ChordNode high(NodeId(MakeUint128(1ULL << 63, 0) * 2 - 1), 4);  // 2^127-ish
  NodeId wrapped = high.FingerStart(127);
  EXPECT_LT(wrapped.value(), high.id().value());
}

class ChordNetworkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_unique<ChordNetwork>(/*successor_list_length=*/8, /*seed=*/400);
    network_->BuildInitialNetwork(200);
  }
  std::unique_ptr<ChordNetwork> network_;
};

TEST_F(ChordNetworkTest, SuccessorInvariantHolds) {
  EXPECT_EQ(network_->CountSuccessorViolations(), 0u);
}

TEST_F(ChordNetworkTest, LookupsFindTheRingSuccessor) {
  Rng rng(401);
  std::vector<NodeId> nodes = network_->live_nodes();
  for (int i = 0; i < 300; ++i) {
    NodeId key(rng.NextU64(), rng.NextU64());
    NodeId origin = nodes[rng.NextBelow(nodes.size())];
    ChordRouteResult route = network_->FindSuccessor(origin, key);
    ASSERT_TRUE(route.succeeded);
    EXPECT_EQ(route.owner(), network_->OwnerOf(key));
  }
}

TEST_F(ChordNetworkTest, HopsAreLogarithmic) {
  Rng rng(402);
  std::vector<NodeId> nodes = network_->live_nodes();
  double total = 0;
  const int trials = 300;
  for (int i = 0; i < trials; ++i) {
    NodeId key(rng.NextU64(), rng.NextU64());
    ChordRouteResult route = network_->FindSuccessor(nodes[rng.NextBelow(nodes.size())], key);
    total += route.hops();
  }
  // Chord average is ~0.5 * log2(N) ≈ 3.8 at N=200; allow generous slack.
  EXPECT_LT(total / trials, std::log2(200.0) + 1.0);
  EXPECT_GT(total / trials, 1.0);
}

TEST_F(ChordNetworkTest, SurvivesFailures) {
  Rng rng(403);
  for (int i = 0; i < 50; ++i) {
    std::vector<NodeId> nodes = network_->live_nodes();
    network_->FailNode(nodes[rng.NextBelow(nodes.size())]);
  }
  EXPECT_EQ(network_->live_count(), 150u);
  EXPECT_EQ(network_->CountSuccessorViolations(), 0u);
  std::vector<NodeId> nodes = network_->live_nodes();
  for (int i = 0; i < 200; ++i) {
    NodeId key(rng.NextU64(), rng.NextU64());
    ChordRouteResult route = network_->FindSuccessor(nodes[rng.NextBelow(nodes.size())], key);
    ASSERT_TRUE(route.succeeded);
    EXPECT_EQ(route.owner(), network_->OwnerOf(key));
  }
}

TEST_F(ChordNetworkTest, MixedChurnWithStabilizationKeepsInvariant) {
  // Chord's ring is only eventually consistent: periodic stabilization (the
  // real protocol runs it on a timer) is what folds joins into distant
  // successor lists. Interleave churn with maintenance, as deployed Chord
  // does.
  Rng rng(404);
  for (int round = 0; round < 60; ++round) {
    if (rng.NextBool(0.5)) {
      network_->CreateNode();
    } else {
      std::vector<NodeId> nodes = network_->live_nodes();
      if (nodes.size() > 100) {
        network_->FailNode(nodes[rng.NextBelow(nodes.size())]);
      }
    }
    if (round % 5 == 4) {
      network_->Stabilize();
    }
  }
  network_->Stabilize();
  EXPECT_EQ(network_->CountSuccessorViolations(), 0u);
}

TEST(ChordSmallTest, TwoNodeRing) {
  ChordNetwork network(4, 405);
  network.BuildInitialNetwork(2);
  std::vector<NodeId> nodes = network.live_nodes();
  EXPECT_EQ(network.CountSuccessorViolations(), 0u);
  Rng rng(406);
  for (int i = 0; i < 50; ++i) {
    NodeId key(rng.NextU64(), rng.NextU64());
    ChordRouteResult route = network.FindSuccessor(nodes[0], key);
    ASSERT_TRUE(route.succeeded);
    EXPECT_EQ(route.owner(), network.OwnerOf(key));
  }
}

TEST(ChordSmallTest, SingleNodeOwnsEverything) {
  ChordNetwork network(4, 407);
  network.BuildInitialNetwork(1);
  std::vector<NodeId> nodes = network.live_nodes();
  Rng rng(408);
  NodeId key(rng.NextU64(), rng.NextU64());
  ChordRouteResult route = network.FindSuccessor(nodes[0], key);
  EXPECT_TRUE(route.succeeded);
  EXPECT_EQ(route.owner(), nodes[0]);
}

TEST(ChordLocalityTest, NoProximityBiasUnlikePastry) {
  // The PAST paper's point (section 6): Chord makes no explicit effort at
  // network locality. Per-hop distances should look like random pairs.
  ChordNetwork network(8, 409);
  network.BuildInitialNetwork(300);
  Rng rng(410);
  std::vector<NodeId> nodes = network.live_nodes();
  double hop_distance = 0.0;
  uint64_t hops = 0;
  for (int i = 0; i < 500; ++i) {
    NodeId key(rng.NextU64(), rng.NextU64());
    ChordRouteResult route = network.FindSuccessor(nodes[rng.NextBelow(nodes.size())], key);
    hop_distance += route.distance;
    hops += static_cast<uint64_t>(route.hops());
  }
  double random_distance = 0.0;
  const int pairs = 2000;
  for (int i = 0; i < pairs; ++i) {
    NodeId a = nodes[rng.NextBelow(nodes.size())];
    NodeId b = nodes[rng.NextBelow(nodes.size())];
    if (a != b) {
      random_distance += network.topology().Distance(a, b);
    }
  }
  double avg_hop = hop_distance / static_cast<double>(hops);
  double avg_random = random_distance / pairs;
  // Within 15% of the random-pair average (no locality).
  EXPECT_NEAR(avg_hop, avg_random, avg_random * 0.15);
}

}  // namespace
}  // namespace past
