// Tests for the deterministic RNG and the workload distributions.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/distributions.h"
#include "src/common/rng.h"

namespace past {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextBelowStaysInBounds) {
  Rng rng(3);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(6);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(7);
  Rng child = a.Fork();
  EXPECT_NE(a.NextU64(), child.NextU64());
}

TEST(TruncatedNormalTest, RespectsBounds) {
  // Table 1 d1: mean 27, sigma 10.8, bounds [2, 51].
  TruncatedNormal dist(27.0, 10.8, 2.0, 51.0);
  Rng rng(8);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = dist.Sample(rng);
    ASSERT_GE(v, 2.0);
    ASSERT_LE(v, 51.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 27.0, 0.5);
}

TEST(ZipfTest, RankZeroMostPopular) {
  Zipf zipf(1000, 0.8);
  Rng rng(9);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 50000; ++i) {
    ++counts[zipf.Sample(rng)];
  }
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[500] - 50);
  // Zipf law check: count(0)/count(9) ~ 10^0.8 ~ 6.3.
  double ratio = static_cast<double>(counts[0]) / std::max(1, counts[9]);
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 12.0);
}

TEST(FileSizeDistributionTest, MatchesCalibratedMedianAndMean) {
  // NLANR statistics from the paper: median 1,312 / mean 10,517.
  FileSizeDistribution dist(1312, 10517, 0.0015, 1.1, 138ull * 1000 * 1000);
  Rng rng(10);
  std::vector<double> samples;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double v = static_cast<double>(dist.Sample(rng));
    samples.push_back(v);
    sum += v;
  }
  std::nth_element(samples.begin(), samples.begin() + n / 2, samples.end());
  double median = samples[n / 2];
  EXPECT_NEAR(median, 1312.0, 250.0);
  double mean = sum / n;
  // The heavy tail makes the sample mean noisy; it must be the right order
  // of magnitude and well above the median.
  EXPECT_GT(mean, 4000.0);
  EXPECT_LT(mean, 40000.0);
}

TEST(FileSizeDistributionTest, NeverExceedsMax) {
  FileSizeDistribution dist(1312, 10517, 0.01, 1.05, 1000000);
  Rng rng(11);
  for (int i = 0; i < 100000; ++i) {
    EXPECT_LE(dist.Sample(rng), 1000000u);
  }
}

}  // namespace
}  // namespace past
