// Per-node persistent storage state.
//
// A PAST node's disk holds (a) primary replicas (the node is one of the k
// numerically closest to the fileId), (b) diverted replicas (held on behalf
// of a leaf-set neighbor), and (c) diversion pointers: file-table entries
// referring to a replica held elsewhere, installed at the diverting node A
// and at the (k+1)-th closest node C so that neither single failure loses
// track of the replica (paper section 3.3). The remainder of the advertised
// capacity is available to the cache.
#ifndef SRC_STORAGE_NODE_STORE_H_
#define SRC_STORAGE_NODE_STORE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/common/file_id.h"
#include "src/common/flat_table.h"
#include "src/common/node_id.h"
#include "src/crypto/certificates.h"

namespace past {

class NodeStoreJournal;
class StorageEnv;
struct DurableOptions;

enum class ReplicaKind {
  kPrimary,   // stored because we are among the k closest
  kDiverted,  // stored on behalf of a diverting leaf-set neighbor
};

// All k replicas of a file share one immutable certificate, so entries hold
// it by shared pointer (at paper scale ~9.3M replica entries exist).
using FileCertificateRef = std::shared_ptr<const FileCertificate>;
// File bodies are immutable too; replicas of the same file share the bytes.
// Null for trace-driven experiments, which track sizes only.
using FileContentRef = std::shared_ptr<const std::string>;

// The per-replica record every store operation touches: 16 bytes, so a
// node's replica table stays dense at simulation scale. Certificate and
// content references — carried only by durability- and content-bearing
// workloads, never by size-only simulations — live in a side table
// (payloads()) keyed by the same FileId.
struct ReplicaEntry {
  uint64_t size = 0;
  ReplicaKind kind = ReplicaKind::kPrimary;
};

// Optional heavyweight attachments of a replica.
struct ReplicaPayload {
  FileCertificateRef certificate;
  FileContentRef content;
};

// The role a diversion pointer plays at this node.
enum class PointerRole {
  kDiverter,  // we are node A: one of the k closest, diverted our replica to B
  kWitness,   // we are node C: the (k+1)-th closest, shadowing A's pointer
};

struct DiversionPointer {
  NodeId holder;  // node B actually storing the replica
  PointerRole role;
  uint64_t size = 0;
};

class NodeStore {
 public:
  explicit NodeStore(uint64_t capacity_bytes);
  ~NodeStore();  // out-of-line: journal_ points at an incomplete type here
  NodeStore(NodeStore&&) = default;
  NodeStore& operator=(NodeStore&&) = default;

  uint64_t capacity() const { return capacity_; }
  uint64_t used() const { return used_; }
  // Remaining free space F_N: capacity minus replica bytes. Cached copies do
  // not count — they are evictable at any time.
  uint64_t free_bytes() const { return capacity_ - used_; }

  // --- replicas ---

  // Unconditionally stores a replica (policy checks happen in the PAST
  // layer). Returns false if it physically cannot fit.
  bool StoreReplica(const FileId& id, ReplicaKind kind, uint64_t size,
                    FileCertificateRef certificate, FileContentRef content = nullptr);

  bool HasReplica(const FileId& id) const;
  const ReplicaEntry* GetReplica(const FileId& id) const;

  // Payload accessors: null when the replica is absent or carries none.
  FileCertificateRef GetCertificate(const FileId& id) const;
  FileContentRef GetContent(const FileId& id) const;

  // Drops a replica, freeing its space. Returns its size, or nullopt.
  std::optional<uint64_t> RemoveReplica(const FileId& id);

  // Changes the bookkeeping kind of an existing replica (e.g. a diverted
  // replica being migrated/promoted after membership change).
  bool SetReplicaKind(const FileId& id, ReplicaKind kind);

  // Open-addressing table; iteration (structured bindings) and size() work
  // as with the former unordered_map, in deterministic slot order.
  using ReplicaTable = FlatTable<FileId, ReplicaEntry, FileIdHash>;
  const ReplicaTable& replicas() const { return replicas_; }
  using PayloadTable = FlatTable<FileId, ReplicaPayload, FileIdHash>;
  const PayloadTable& payloads() const { return payloads_; }

  // --- diversion pointers ---

  void InstallPointer(const FileId& id, const NodeId& holder, PointerRole role, uint64_t size);
  const DiversionPointer* GetPointer(const FileId& id) const;
  bool RemovePointer(const FileId& id);
  using PointerTable = FlatTable<FileId, DiversionPointer, FileIdHash>;
  const PointerTable& pointers() const { return pointers_; }

  // --- test-only fault injection ---

  // Silently drops a replica WITHOUT releasing its bytes: the entry vanishes
  // from the file table while used() keeps charging for it, exactly the
  // store-corruption a crashed-and-restarted disk could exhibit. Exists so
  // the simulation harness can demonstrate invariant detection and failing-
  // seed minimization on a guaranteed violation; never called by protocol
  // code. Returns false if the replica was not present.
  bool TestOnlyCorruptDropReplica(const FileId& id);

  // --- durability ---
  //
  // By default the store is purely in-memory. With a journal attached, every
  // mutator appends a write-ahead record before returning, and Commit()
  // fsyncs them; the ops layer calls Commit() before any ack or receipt
  // leaves the node, so acked state survives a crash (src/storage/wal.h).

  // Attaches a fresh write-ahead journal in `dir` (which must be empty —
  // this is for a brand-new node). All I/O goes through `env`.
  void EnableDurability(StorageEnv& env, std::string dir, const DurableOptions& opts);

  // Replays `dir` into this (empty, journal-less) store and attaches the
  // recovered journal. Returns false when the directory could not be
  // re-journaled (the replayed in-memory state is still usable).
  bool RecoverDurable(StorageEnv& env, std::string dir, const DurableOptions& opts);

  // Fsyncs outstanding journal records. True when everything appended so far
  // is durable; trivially true with no journal attached.
  bool Commit();

  bool has_journal() const { return journal_ != nullptr; }
  const NodeStoreJournal* journal() const { return journal_.get(); }

  // Shrinks the tables' first allocation from 16 slots to 4 (they still
  // grow normally). A 16-slot replica table costs ~600 bytes; at million-
  // node scale, where the average node holds ~3 replicas, that default is
  // the single largest per-node heap block. Early slot order differs from
  // the default, so this is only for deployments whose consumers never
  // observe table iteration order (the scale engine qualifies: snapshots
  // sort, counts are commutative); the message-level simulator's committed
  // golden fingerprints depend on the default and must not opt in. Must be
  // called before the first insert.
  void SetCompactTables() {
    replicas_.set_initial_capacity(4);
    payloads_.set_initial_capacity(4);
    pointers_.set_initial_capacity(4);
  }

  // --- stats ---

  size_t replica_count() const { return replicas_.size(); }
  size_t primary_count() const { return primary_count_; }
  size_t diverted_count() const { return replicas_.size() - primary_count_; }

 private:
  friend class NodeStoreJournal;

  // Replay support: wipes tables and counters when a snapshot record resets
  // the store mid-replay. Only the journal calls this.
  void ResetForRecovery();
  // Compacts the journal when its dead-byte threshold is crossed.
  void MaybeCompact();

  uint64_t capacity_;
  uint64_t used_ = 0;
  size_t primary_count_ = 0;
  ReplicaTable replicas_;
  PayloadTable payloads_;  // only files whose replica carries cert/content
  PointerTable pointers_;
  std::unique_ptr<NodeStoreJournal> journal_;
};

}  // namespace past

#endif  // SRC_STORAGE_NODE_STORE_H_
